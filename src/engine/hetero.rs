//! Heterogeneous community search through the engine facade.
//!
//! A `(k, P)-core` of a heterogeneous graph is exactly a k-core of the
//! meta-path projection (paper §VI-A), so the engine can serve hetero
//! queries by projecting once and reusing everything the homogeneous
//! [`Engine`] already has — cached decompositions, the sharded distance
//! cache, batch execution. [`HeteroEngine`] packages that seam: it owns
//! the projection *and* the id mappings, so callers speak original
//! heterogeneous node ids end to end and never hand-roll
//! `projection.local(..)` / `projection.original(..)` translations.
//!
//! (`csag::core::hetero_cs::SeaHetero` remains the native index-free
//! pipeline that samples *before* projecting — the right tool when the
//! full projection is too expensive to materialize.)

use super::error::CsagError;
use super::query::CommunityQuery;
use super::result::CommunityResult;
use super::Engine;
use csag_graph::{HeteroGraph, MetaPath, NodeId};
use std::collections::HashMap;

/// An [`Engine`] over a meta-path projection, addressed by *original*
/// heterogeneous node ids.
///
/// ```
/// use csag::engine::{CommunityQuery, HeteroEngine, Method};
/// use csag::graph::{HeteroGraphBuilder, MetaPath};
///
/// // Three authors co-writing pairwise through three papers.
/// let mut b = HeteroGraphBuilder::new(0);
/// let (author, paper) = (b.node_type("author"), b.node_type("paper"));
/// let writes = b.edge_type("writes");
/// let a: Vec<u32> = (0..3).map(|_| b.add_node(author, &["ml"], &[])).collect();
/// let p: Vec<u32> = (0..3).map(|_| b.add_node(paper, &[], &[])).collect();
/// for (i, j) in [(0, 0), (1, 0), (1, 1), (2, 1), (2, 2), (0, 2)] {
///     b.add_edge(a[i], p[j], writes).unwrap();
/// }
/// let engine = HeteroEngine::project(&b.build(), &MetaPath::new(
///     vec![author, paper, author],
///     vec![writes, writes],
/// ));
/// let res = engine
///     .run(&CommunityQuery::new(Method::Exact, a[0]).with_k(2))
///     .expect("the co-author triangle is a (2,P)-core");
/// assert_eq!(res.community, a);
/// ```
pub struct HeteroEngine {
    engine: Engine,
    to_original: Vec<NodeId>,
    from_original: HashMap<NodeId, NodeId>,
}

impl HeteroEngine {
    /// Projects `g` under the symmetric meta-path `path` and builds the
    /// engine over the projection (the reusable per-graph preparation —
    /// do it once, query many times).
    ///
    /// # Panics
    /// If the meta-path is not symmetric-typed (source type ≠ end type),
    /// like [`HeteroGraph::project`].
    pub fn project(g: &HeteroGraph, path: &MetaPath) -> Self {
        let projection = g.project(path);
        HeteroEngine {
            engine: Engine::new(projection.graph),
            to_original: projection.to_original,
            from_original: projection.from_original,
        }
    }

    /// The underlying engine over the projected graph (projection-local
    /// ids; for cache probes and advanced use).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Original ids of every target-type node, ascending — the valid
    /// query nodes of this engine.
    pub fn target_nodes(&self) -> &[NodeId] {
        &self.to_original
    }

    /// Maps an original node id to its projection-local id, if it is a
    /// target-type node.
    pub fn local(&self, original: NodeId) -> Option<NodeId> {
        self.from_original.get(&original).copied()
    }

    /// Maps a projection-local id back to the original graph.
    pub fn original(&self, local: NodeId) -> NodeId {
        self.to_original[local as usize]
    }

    /// Runs one query whose `q` (and resulting community) are original
    /// heterogeneous node ids.
    ///
    /// # Errors
    /// [`CsagError::QueryNodeNotFound`] if `query.q` is not a target-type
    /// node of the projection; otherwise the same errors as
    /// [`Engine::run`].
    pub fn run(&self, query: &CommunityQuery) -> Result<CommunityResult, CsagError> {
        let local = self.localized(query)?;
        self.engine.run(&local).map(|res| self.globalize(res))
    }

    /// [`HeteroEngine::run`] over a batch, in parallel, preserving order;
    /// original ids in, original ids out.
    pub fn run_batch(&self, queries: &[CommunityQuery]) -> Vec<Result<CommunityResult, CsagError>> {
        // Translate up front so the engine batch stays homogeneous; a
        // non-target query node yields its error in place.
        let localized: Vec<Result<CommunityQuery, CsagError>> =
            queries.iter().map(|q| self.localized(q)).collect();
        let valid: Vec<CommunityQuery> = localized
            .iter()
            .filter_map(|r| r.as_ref().ok().cloned())
            .collect();
        let mut answers = self.engine.run_batch(&valid).into_iter();
        localized
            .into_iter()
            .map(|r| match r {
                Ok(_) => answers
                    .next()
                    .expect("one engine answer per valid query")
                    .map(|res| self.globalize(res)),
                Err(e) => Err(e),
            })
            .collect()
    }

    fn localized(&self, query: &CommunityQuery) -> Result<CommunityQuery, CsagError> {
        match self.local(query.q) {
            Some(local) => Ok(query.clone().with_query(local)),
            None => Err(CsagError::QueryNodeNotFound {
                q: query.q,
                nodes: self.to_original.len(),
            }),
        }
    }

    /// Rewrites a projection-local result back into original ids.
    fn globalize(&self, mut res: CommunityResult) -> CommunityResult {
        res.q = self.original(res.q);
        for v in &mut res.community {
            *v = self.original(*v);
        }
        res.community.sort_unstable();
        res
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Method;
    use csag_graph::HeteroGraphBuilder;

    /// Authors a0..a3 (+ one paper-only node) where a0,a1,a2 co-author
    /// pairwise and a3 is tied in through one shared paper with a2.
    fn toy() -> (HeteroGraph, MetaPath, Vec<NodeId>) {
        let mut b = HeteroGraphBuilder::new(1);
        let author = b.node_type("author");
        let paper = b.node_type("paper");
        let writes = b.edge_type("writes");
        let authors: Vec<NodeId> = (0..4)
            .map(|i| b.add_node(author, &["ml"], &[i as f64]))
            .collect();
        let papers: Vec<NodeId> = (0..4)
            .map(|i| b.add_node(paper, &[], &[i as f64]))
            .collect();
        // p0: a0+a1, p1: a1+a2, p2: a0+a2, p3: a2+a3.
        for (a, p) in [
            (0, 0),
            (1, 0),
            (1, 1),
            (2, 1),
            (0, 2),
            (2, 2),
            (2, 3),
            (3, 3),
        ] {
            b.add_edge(authors[a], papers[p], writes).unwrap();
        }
        let g = b.build();
        let apa = MetaPath::new(vec![author, paper, author], vec![writes, writes]);
        (g, apa, authors)
    }

    #[test]
    fn hetero_engine_speaks_original_ids() {
        let (g, apa, authors) = toy();
        let engine = HeteroEngine::project(&g, &apa);
        assert_eq!(engine.target_nodes(), authors.as_slice());
        let res = engine
            .run(&CommunityQuery::new(Method::Exact, authors[0]).with_k(2))
            .unwrap();
        assert_eq!(res.q, authors[0]);
        assert_eq!(res.community, vec![authors[0], authors[1], authors[2]]);
        // Round-trip maps agree.
        let local = engine.local(authors[2]).unwrap();
        assert_eq!(engine.original(local), authors[2]);
    }

    #[test]
    fn hetero_engine_matches_hand_rolled_projection() {
        let (g, apa, authors) = toy();
        let hetero = HeteroEngine::project(&g, &apa);
        let projection = g.project(&apa);
        let hand = Engine::new(projection.graph.clone());
        for &a in &authors {
            let through = hetero.run(&CommunityQuery::new(Method::Exact, a).with_k(2));
            let local = projection.local(a).unwrap();
            let manual = hand
                .run(&CommunityQuery::new(Method::Exact, local).with_k(2))
                .map(|r| {
                    let mut originals: Vec<NodeId> = r
                        .community
                        .iter()
                        .map(|&l| projection.original(l))
                        .collect();
                    originals.sort_unstable();
                    originals
                });
            assert_eq!(through.map(|r| r.community), manual, "author {a}");
        }
    }

    #[test]
    fn batch_interleaves_errors_in_order() {
        let (g, apa, authors) = toy();
        let engine = HeteroEngine::project(&g, &apa);
        let paper_node = 4; // first paper id — not a target-type node
        let queries = vec![
            CommunityQuery::new(Method::Exact, authors[1]).with_k(2),
            CommunityQuery::new(Method::Exact, paper_node).with_k(2),
            CommunityQuery::new(Method::Exact, authors[3]).with_k(2),
        ];
        let out = engine.run_batch(&queries);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].as_ref().unwrap().q, authors[1]);
        assert!(matches!(
            out[1],
            Err(CsagError::QueryNodeNotFound { q: 4, .. })
        ));
        // a3's only co-author is a2: no 2-core, a definitive no.
        assert!(out[2].as_ref().unwrap_err().is_no_community());
    }
}
