//! Heterogeneous community search through the engine facade.
//!
//! A `(k, P)-core` of a heterogeneous graph is exactly a k-core of the
//! meta-path projection (paper §VI-A), so the engine can serve hetero
//! queries by projecting once and reusing everything the homogeneous
//! [`Engine`] already has — cached decompositions, the sharded distance
//! cache, batch execution. [`HeteroEngine`] packages that seam: it owns
//! the projection *and* the id mappings, so callers speak original
//! heterogeneous node ids end to end and never hand-roll
//! `projection.local(..)` / `projection.original(..)` translations.
//!
//! Both of the paper's §VI-A strategies live behind the same facade:
//!
//! * **project-then-query** ([`Method::Exact`], [`Method::Sea`], the
//!   baselines): the full projection is materialized *lazily on first
//!   use* and cached, then every homogeneous machine applies;
//! * **sample-then-project** ([`Method::SeaHetero`]): the native
//!   index-free SEA pipeline grows the P-neighborhood on the
//!   heterogeneous graph and only projects the sampled subset — the
//!   right tool when the full projection is too expensive to
//!   materialize. Queries answered this way never trigger the cached
//!   projection at all ([`HeteroEngine::projection_computed`] observes
//!   that).

use super::error::CsagError;
use super::query::{CommunityQuery, Method};
use super::result::CommunityResult;
use super::{sea_community_result, Engine};
use csag_core::hetero_cs::SeaHetero;
use csag_graph::{HeteroGraph, MetaPath, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// The lazily materialized projection: a homogeneous [`Engine`] plus the
/// id maps between original and projection-local node ids.
struct Projected {
    engine: Engine,
    to_original: Vec<NodeId>,
    from_original: HashMap<NodeId, NodeId>,
}

impl Projected {
    fn build(g: &HeteroGraph, path: &MetaPath) -> Self {
        let projection = g.project(path);
        Projected {
            engine: Engine::new(projection.graph),
            to_original: projection.to_original,
            from_original: projection.from_original,
        }
    }
}

/// An [`Engine`] over a meta-path projection, addressed by *original*
/// heterogeneous node ids.
///
/// ```
/// use csag::engine::{CommunityQuery, HeteroEngine, Method};
/// use csag::graph::{HeteroGraphBuilder, MetaPath};
///
/// // Three authors co-writing pairwise through three papers.
/// let mut b = HeteroGraphBuilder::new(0);
/// let (author, paper) = (b.node_type("author"), b.node_type("paper"));
/// let writes = b.edge_type("writes");
/// let a: Vec<u32> = (0..3).map(|_| b.add_node(author, &["ml"], &[])).collect();
/// let p: Vec<u32> = (0..3).map(|_| b.add_node(paper, &[], &[])).collect();
/// for (i, j) in [(0, 0), (1, 0), (1, 1), (2, 1), (2, 2), (0, 2)] {
///     b.add_edge(a[i], p[j], writes).unwrap();
/// }
/// let engine = HeteroEngine::project(&b.build(), &MetaPath::new(
///     vec![author, paper, author],
///     vec![writes, writes],
/// ));
/// let res = engine
///     .run(&CommunityQuery::new(Method::Exact, a[0]).with_k(2))
///     .expect("the co-author triangle is a (2,P)-core");
/// assert_eq!(res.community, a);
/// ```
pub struct HeteroEngine {
    /// The heterogeneous graph, retained only by the constructors that
    /// take (or share) ownership — [`Method::SeaHetero`] needs it at
    /// query time. [`HeteroEngine::project`] keeps its historical
    /// cost (projection only, no graph copy or retention) and serves
    /// the projection-based methods alone.
    hetero: Option<Arc<HeteroGraph>>,
    path: MetaPath,
    projected: OnceLock<Projected>,
}

impl HeteroEngine {
    /// Builds the facade over `g` under the symmetric meta-path `path`
    /// **without projecting anything yet**: the full projection is
    /// materialized lazily, on the first query that needs it.
    /// [`Method::SeaHetero`] queries sample before projecting and never
    /// need it.
    ///
    /// # Panics
    /// If the meta-path is not symmetric-typed (source type ≠ end type).
    pub fn new(g: HeteroGraph, path: MetaPath) -> Self {
        HeteroEngine::from_arc(Arc::new(g), path)
    }

    /// [`HeteroEngine::new`] over an already-shared graph (no copy).
    ///
    /// # Panics
    /// If the meta-path is not symmetric-typed.
    pub fn from_arc(g: Arc<HeteroGraph>, path: MetaPath) -> Self {
        assert!(
            path.is_symmetric_typed(),
            "community search requires a symmetric meta-path"
        );
        HeteroEngine {
            hetero: Some(g),
            path,
            projected: OnceLock::new(),
        }
    }

    /// Builds the facade and materializes the projection *eagerly* (the
    /// reusable per-graph preparation — do it once, query many times,
    /// with no first-query latency cliff).
    ///
    /// Because it only borrows `g`, this constructor keeps exactly its
    /// historical cost: it builds the projection and retains **no copy
    /// of the heterogeneous graph** — so [`Method::SeaHetero`] (which
    /// samples the original graph at query time) is *not* servable
    /// through a facade built this way and returns
    /// [`CsagError::InvalidParams`]. Use [`HeteroEngine::new`] /
    /// [`HeteroEngine::from_arc`] / [`HeteroEngine::project_arc`] when
    /// you want both strategies.
    ///
    /// # Panics
    /// If the meta-path is not symmetric-typed (source type ≠ end type),
    /// like [`HeteroGraph::project`].
    pub fn project(g: &HeteroGraph, path: &MetaPath) -> Self {
        assert!(
            path.is_symmetric_typed(),
            "community search requires a symmetric meta-path"
        );
        let engine = HeteroEngine {
            hetero: None,
            path: path.clone(),
            projected: OnceLock::new(),
        };
        engine
            .projected
            .set(Projected::build(g, path))
            .unwrap_or_else(|_| unreachable!("fresh OnceLock"));
        engine
    }

    /// [`HeteroEngine::project`] over an already-shared graph — eager
    /// projection, no graph copy, and (unlike the borrowing
    /// [`HeteroEngine::project`]) the graph stays shared so
    /// [`Method::SeaHetero`] remains servable.
    ///
    /// # Panics
    /// If the meta-path is not symmetric-typed.
    pub fn project_arc(g: Arc<HeteroGraph>, path: MetaPath) -> Self {
        let engine = HeteroEngine::from_arc(g, path);
        let _ = engine.projected();
        engine
    }

    fn projected(&self) -> &Projected {
        self.projected.get_or_init(|| {
            let g = self
                .hetero
                .as_ref()
                .expect("a facade without the graph is always built eagerly projected");
            Projected::build(g, &self.path)
        })
    }

    /// Whether the full meta-path projection has been materialized —
    /// `false` as long as only [`Method::SeaHetero`] queries (which
    /// sample before projecting) have run against a lazily built facade.
    pub fn projection_computed(&self) -> bool {
        self.projected.get().is_some()
    }

    /// The underlying heterogeneous graph, when this facade retains one
    /// (`None` for facades built with the borrowing
    /// [`HeteroEngine::project`]).
    pub fn hetero_graph(&self) -> Option<&HeteroGraph> {
        self.hetero.as_deref()
    }

    /// The meta-path this facade projects along.
    pub fn meta_path(&self) -> &MetaPath {
        &self.path
    }

    /// The underlying engine over the projected graph (projection-local
    /// ids; for cache probes and advanced use). Forces the projection.
    pub fn engine(&self) -> &Engine {
        &self.projected().engine
    }

    /// Original ids of every target-type node, ascending — the valid
    /// query nodes of this engine. Forces the projection.
    pub fn target_nodes(&self) -> &[NodeId] {
        &self.projected().to_original
    }

    /// Maps an original node id to its projection-local id, if it is a
    /// target-type node. Forces the projection.
    pub fn local(&self, original: NodeId) -> Option<NodeId> {
        self.projected().from_original.get(&original).copied()
    }

    /// Maps a projection-local id back to the original graph. Forces the
    /// projection.
    pub fn original(&self, local: NodeId) -> NodeId {
        self.projected().to_original[local as usize]
    }

    /// Runs one query whose `q` (and resulting community) are original
    /// heterogeneous node ids. [`Method::SeaHetero`] dispatches to the
    /// native sample-then-project pipeline; every other method runs on
    /// the (lazily cached) full projection.
    ///
    /// # Errors
    /// [`CsagError::QueryNodeNotFound`] if `query.q` is not a target-type
    /// node of the projection; otherwise the same errors as
    /// [`Engine::run`].
    pub fn run(&self, query: &CommunityQuery) -> Result<CommunityResult, CsagError> {
        if query.method == Method::SeaHetero {
            return self.run_native(query);
        }
        let local = self.localized(query)?;
        self.projected()
            .engine
            .run(&local)
            .map(|res| self.globalize(res))
    }

    /// [`HeteroEngine::run`] over a batch, in parallel, preserving order;
    /// original ids in, original ids out. Projection-based queries share
    /// the homogeneous engine's batch machinery (per-worker workspaces);
    /// [`Method::SeaHetero`] queries fan out over the native pipeline.
    pub fn run_batch(&self, queries: &[CommunityQuery]) -> Vec<Result<CommunityResult, CsagError>> {
        // Translate up front so the engine batch stays homogeneous; a
        // non-target query node yields its error in place, and native
        // sample-then-project queries are carried through untranslated.
        enum Routed {
            Local(CommunityQuery),
            Native(usize),
            Failed(CsagError),
        }
        let routed: Vec<Routed> = queries
            .iter()
            .enumerate()
            .map(|(i, q)| {
                if q.method == Method::SeaHetero {
                    Routed::Native(i)
                } else {
                    match self.localized(q) {
                        Ok(local) => Routed::Local(local),
                        Err(e) => Routed::Failed(e),
                    }
                }
            })
            .collect();
        let local: Vec<CommunityQuery> = routed
            .iter()
            .filter_map(|r| match r {
                Routed::Local(q) => Some(q.clone()),
                _ => None,
            })
            .collect();
        let native_ix: Vec<usize> = routed
            .iter()
            .filter_map(|r| match r {
                Routed::Native(i) => Some(*i),
                _ => None,
            })
            .collect();
        let mut local_answers = if local.is_empty() {
            Vec::new()
        } else {
            self.projected().engine.run_batch(&local)
        }
        .into_iter();
        let mut native_answers =
            super::batch::parallel_map(&native_ix, super::batch::available_threads(), |&i| {
                self.run_native(&queries[i])
            })
            .into_iter();
        routed
            .into_iter()
            .map(|r| match r {
                Routed::Local(_) => local_answers
                    .next()
                    .expect("one engine answer per projected query")
                    .map(|res| self.globalize(res)),
                Routed::Native(_) => native_answers
                    .next()
                    .expect("one native answer per sea-hetero query"),
                Routed::Failed(e) => Err(e),
            })
            .collect()
    }

    /// The native §VI-A pipeline: grow the P-neighborhood on the
    /// heterogeneous graph, project only the sampled subset, then run
    /// the homogeneous SEA estimation on it.
    fn run_native(&self, query: &CommunityQuery) -> Result<CommunityResult, CsagError> {
        let t_total = Instant::now();
        query.validate()?;
        let hetero = self.hetero.as_ref().ok_or_else(|| {
            CsagError::invalid(
                "method sea-hetero samples the original heterogeneous graph, but this \
                 facade was built with HeteroEngine::project(&g, ..), which retains no \
                 copy of it; build with HeteroEngine::new / from_arc / project_arc",
            )
        })?;
        let solver = SeaHetero::new(hetero, self.path.clone(), query.distance_params());
        let mut rng = StdRng::seed_from_u64(query.seed);
        let r = solver.run(query.q, &query.sea_params(), &mut rng)?;
        // The solver already speaks original ids; no globalization step.
        let mut res = sea_community_result(query, r);
        res.timings.search = t_total.elapsed();
        res.timings.total = t_total.elapsed();
        Ok(res)
    }

    fn localized(&self, query: &CommunityQuery) -> Result<CommunityQuery, CsagError> {
        match self.local(query.q) {
            Some(local) => Ok(query.clone().with_query(local)),
            None => Err(CsagError::QueryNodeNotFound {
                q: query.q,
                nodes: self.projected().to_original.len(),
            }),
        }
    }

    /// Rewrites a projection-local result back into original ids.
    fn globalize(&self, mut res: CommunityResult) -> CommunityResult {
        res.q = self.original(res.q);
        for v in &mut res.community {
            *v = self.original(*v);
        }
        res.community.sort_unstable();
        res
    }
}

// The facade is shared across service workers like the homogeneous
// engine; keep that a compile-time guarantee.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<HeteroEngine>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Method;
    use csag_graph::HeteroGraphBuilder;

    /// Authors a0..a3 (+ one paper-only node) where a0,a1,a2 co-author
    /// pairwise and a3 is tied in through one shared paper with a2.
    fn toy() -> (HeteroGraph, MetaPath, Vec<NodeId>) {
        let mut b = HeteroGraphBuilder::new(1);
        let author = b.node_type("author");
        let paper = b.node_type("paper");
        let writes = b.edge_type("writes");
        let authors: Vec<NodeId> = (0..4)
            .map(|i| b.add_node(author, &["ml"], &[i as f64]))
            .collect();
        let papers: Vec<NodeId> = (0..4)
            .map(|i| b.add_node(paper, &[], &[i as f64]))
            .collect();
        // p0: a0+a1, p1: a1+a2, p2: a0+a2, p3: a2+a3.
        for (a, p) in [
            (0, 0),
            (1, 0),
            (1, 1),
            (2, 1),
            (0, 2),
            (2, 2),
            (2, 3),
            (3, 3),
        ] {
            b.add_edge(authors[a], papers[p], writes).unwrap();
        }
        let g = b.build();
        let apa = MetaPath::new(vec![author, paper, author], vec![writes, writes]);
        (g, apa, authors)
    }

    #[test]
    fn hetero_engine_speaks_original_ids() {
        let (g, apa, authors) = toy();
        let engine = HeteroEngine::project(&g, &apa);
        assert_eq!(engine.target_nodes(), authors.as_slice());
        let res = engine
            .run(&CommunityQuery::new(Method::Exact, authors[0]).with_k(2))
            .unwrap();
        assert_eq!(res.q, authors[0]);
        assert_eq!(res.community, vec![authors[0], authors[1], authors[2]]);
        // Round-trip maps agree.
        let local = engine.local(authors[2]).unwrap();
        assert_eq!(engine.original(local), authors[2]);
    }

    #[test]
    fn hetero_engine_matches_hand_rolled_projection() {
        let (g, apa, authors) = toy();
        let hetero = HeteroEngine::project(&g, &apa);
        let projection = g.project(&apa);
        let hand = Engine::new(projection.graph.clone());
        for &a in &authors {
            let through = hetero.run(&CommunityQuery::new(Method::Exact, a).with_k(2));
            let local = projection.local(a).unwrap();
            let manual = hand
                .run(&CommunityQuery::new(Method::Exact, local).with_k(2))
                .map(|r| {
                    let mut originals: Vec<NodeId> = r
                        .community
                        .iter()
                        .map(|&l| projection.original(l))
                        .collect();
                    originals.sort_unstable();
                    originals
                });
            assert_eq!(through.map(|r| r.community), manual, "author {a}");
        }
    }

    #[test]
    fn batch_interleaves_errors_in_order() {
        let (g, apa, authors) = toy();
        let engine = HeteroEngine::project(&g, &apa);
        let paper_node = 4; // first paper id — not a target-type node
        let queries = vec![
            CommunityQuery::new(Method::Exact, authors[1]).with_k(2),
            CommunityQuery::new(Method::Exact, paper_node).with_k(2),
            CommunityQuery::new(Method::Exact, authors[3]).with_k(2),
        ];
        let out = engine.run_batch(&queries);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].as_ref().unwrap().q, authors[1]);
        assert!(matches!(
            out[1],
            Err(CsagError::QueryNodeNotFound { q: 4, .. })
        ));
        // a3's only co-author is a2: no 2-core, a definitive no.
        assert!(out[2].as_ref().unwrap_err().is_no_community());
    }

    /// The facade's sample-then-project path never materializes the full
    /// projection and matches the native pipeline bit-for-bit.
    #[test]
    fn sea_hetero_runs_without_projecting() {
        let (g, apa, authors) = toy();
        let engine = HeteroEngine::new(g.clone(), apa.clone());
        assert!(!engine.projection_computed());
        let query = CommunityQuery::new(Method::SeaHetero, authors[0])
            .with_k(2)
            .with_error_bound(0.2)
            .with_seed(3);
        let res = engine.run(&query).unwrap();
        assert!(
            !engine.projection_computed(),
            "sampling before projection must not build the full projection"
        );
        assert!(res.community.contains(&authors[0]));
        assert!(res.certificate.is_some(), "SEA reports its accuracy");

        // Same parameters through the native solver: identical answer.
        let solver = SeaHetero::new(&g, apa, query.distance_params());
        let mut rng = StdRng::seed_from_u64(query.seed);
        let native = solver
            .run(authors[0], &query.sea_params(), &mut rng)
            .unwrap();
        assert_eq!(res.community, native.community);
        assert_eq!(res.delta, native.delta_star);
    }

    /// One batch can mix both §VI-A strategies; results stay in order.
    #[test]
    fn batch_mixes_native_and_projected_queries() {
        let (g, apa, authors) = toy();
        let engine = HeteroEngine::new(g, apa);
        let queries = vec![
            CommunityQuery::new(Method::SeaHetero, authors[0])
                .with_k(2)
                .with_error_bound(0.2)
                .with_seed(5),
            CommunityQuery::new(Method::Exact, authors[1]).with_k(2),
            CommunityQuery::new(Method::SeaHetero, authors[2])
                .with_k(2)
                .with_error_bound(0.2)
                .with_seed(6),
        ];
        let out = engine.run_batch(&queries);
        assert_eq!(out.len(), 3);
        for (i, res) in out.iter().enumerate() {
            let res = res.as_ref().unwrap_or_else(|e| panic!("query {i}: {e}"));
            assert!(res.community.contains(&queries[i].q));
        }
        // Each answer matches its serial twin.
        for (q, batched) in queries.iter().zip(&out) {
            let serial = engine.run(q).unwrap();
            assert_eq!(serial.community, batched.as_ref().unwrap().community);
        }
        assert!(engine.projection_computed(), "the exact query forced it");
    }

    /// A homogeneous engine rejects the hetero-native method with a
    /// pointer to the right entry point — and so does a borrowing
    /// `project(&g, ..)` facade, which retains no graph to sample.
    #[test]
    fn homogeneous_engine_rejects_sea_hetero() {
        let (g, apa, authors) = toy();
        let engine = HeteroEngine::project(&g, &apa);
        let native = CommunityQuery::new(Method::SeaHetero, authors[0])
            .with_k(2)
            .with_error_bound(0.2);
        let err = engine
            .engine()
            .run(&CommunityQuery::new(Method::SeaHetero, 0).with_k(2))
            .unwrap_err();
        assert!(matches!(err, CsagError::InvalidParams { .. }));
        assert!(err.to_string().contains("HeteroEngine"), "{err}");
        // project(&g, ..) keeps its historical cost (no graph copy), so
        // the native method is honestly unservable through it...
        assert!(engine.hetero_graph().is_none());
        let err = engine.run(&native).unwrap_err();
        assert!(err.to_string().contains("project_arc"), "{err}");
        // ...while the retaining constructors serve it for the same node.
        let engine = HeteroEngine::project_arc(Arc::new(g), apa);
        assert!(engine.projection_computed());
        assert!(engine.hetero_graph().is_some());
        assert!(engine.run(&native).is_ok());
    }
}
