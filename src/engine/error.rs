//! The engine's error type.
//!
//! [`CsagError`] is defined in `csag-core` (the lowest crate whose run
//! APIs return it) and re-exported here so `csag::engine` is a complete,
//! self-contained surface: every fallible engine call returns
//! `Result<_, CsagError>`.
//!
//! The variants separate what `Option`-based APIs used to conflate:
//!
//! | Variant | Meaning | Typical reaction |
//! |---|---|---|
//! | [`CsagError::InvalidParams`] | the query could never run | fix the builder call |
//! | [`CsagError::QueryNodeNotFound`] | the node id is out of range | fix the id |
//! | [`CsagError::NoCommunity`] | a definitive, correct "no" | report the empty answer |
//! | [`CsagError::BudgetExhausted`] | resources ran out mid-search | use the [`PartialSearch`] best-so-far, or retry with a bigger budget |
//! | [`CsagError::Overloaded`] | the service shed the request before it ran | back off for `retry_after`, then resubmit |
//! | [`CsagError::EpochUnavailable`] | a pinned epoch nobody has published | retry once writes land, or drop the pin |
//! | [`CsagError::DurabilityUnavailable`] | the WAL rejected an append; the store is read-only | keep reading; retry writes after the disk recovers |

pub use csag_core::error::{CsagError, PartialSearch};
