//! The unified query builder: one description for every method.
//!
//! A [`CommunityQuery`] names the query node, the structural model
//! (`k` + k-core/k-truss), the [`Method`] to answer with, and the
//! accuracy/budget knobs that method understands. Knobs a method does not
//! use are simply ignored, so the same query can be replayed across
//! methods (the comparison tables of the paper do exactly that).
//!
//! Validation happens *at build time*: [`CommunityQuery::build`] (or
//! [`CommunityQuery::validate`], which the engine also calls defensively
//! on every run) rejects degenerate parameters with
//! [`CsagError::InvalidParams`] instead of silently producing runs whose
//! guarantees are vacuous.

use super::error::CsagError;
use csag_core::distance::DistanceParams;
use csag_core::exact::{ExactParams, PruningConfig};
use csag_core::sea::SeaParams;
use csag_decomp::CommunityModel;
use csag_graph::NodeId;
use std::fmt;
use std::str::FromStr;
use std::time::Duration;

/// Which algorithm answers the query.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Method {
    /// The paper's exact CS-AG enumeration (§IV): δ-optimal, exponential
    /// worst case, budget-boundable.
    Exact,
    /// The paper's SEA sampling-estimation pipeline (§V): approximate
    /// with a statistical accuracy certificate.
    Sea,
    /// SEA restricted to a size window `[l, h]` (§VI-B). Requires
    /// [`CommunityQuery::with_size_bound`].
    SeaSizeBounded,
    /// SEA on a heterogeneous graph (§VI-A): samples the (k,P)-core
    /// neighborhood *before* projecting, so the full meta-path
    /// projection is never materialized. Only a
    /// [`super::HeteroEngine`] can answer it — a homogeneous
    /// [`super::Engine`] rejects it with [`CsagError::InvalidParams`].
    SeaHetero,
    /// ACQ baseline (Fang et al., PVLDB'16): shared-attribute
    /// maximization.
    Acq,
    /// LocATC baseline (Huang & Lakshmanan, PVLDB'17): attribute-coverage
    /// local search.
    Atc,
    /// Approximate VAC baseline (Liu et al., ICDE'20): min-max peeling.
    Vac,
    /// Exact VAC branch-and-bound (feasible on small roots only; guarded
    /// by [`CommunityQuery::with_evac_max_root`]).
    EVac,
}

impl Method {
    /// Stable lower-case name (also the CLI / JSON spelling).
    pub fn name(self) -> &'static str {
        match self {
            Method::Exact => "exact",
            Method::Sea => "sea",
            Method::SeaSizeBounded => "sea-size-bounded",
            Method::SeaHetero => "sea-hetero",
            Method::Acq => "acq",
            Method::Atc => "atc",
            Method::Vac => "vac",
            Method::EVac => "evac",
        }
    }

    /// Every method, in the order the paper's tables list them.
    pub const ALL: [Method; 8] = [
        Method::Exact,
        Method::Sea,
        Method::SeaSizeBounded,
        Method::SeaHetero,
        Method::Acq,
        Method::Atc,
        Method::Vac,
        Method::EVac,
    ];
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Method {
    type Err = CsagError;

    fn from_str(s: &str) -> Result<Self, CsagError> {
        Method::ALL
            .into_iter()
            .find(|m| m.name() == s)
            .ok_or_else(|| {
                CsagError::invalid(format!(
                    "unknown method `{s}` (expected one of: exact, sea, sea-size-bounded, \
                     sea-hetero, acq, atc, vac, evac)"
                ))
            })
    }
}

/// A validated, method-agnostic community-search request.
///
/// Construct with [`CommunityQuery::new`], chain `with_*` setters, and
/// finish with [`CommunityQuery::build`] for build-time validation:
///
/// ```
/// use csag::engine::{CommunityQuery, Method};
///
/// let query = CommunityQuery::new(Method::Sea, 5)
///     .with_k(3)
///     .with_error_bound(0.05)
///     .build()
///     .expect("parameters are sane");
/// assert_eq!(query.k, 3);
/// assert!(CommunityQuery::new(Method::Sea, 5)
///     .with_error_bound(1.5)
///     .build()
///     .is_err());
/// ```
#[derive(Clone, Debug)]
pub struct CommunityQuery {
    /// The algorithm answering the query.
    pub method: Method,
    /// The query node.
    pub q: NodeId,
    /// Structural cohesion parameter k (≥ 2).
    pub k: u32,
    /// Community model (k-core default, k-truss per §VI-C).
    pub model: CommunityModel,
    /// Balance factor γ of the composite attribute distance (`[0, 1]`).
    pub gamma: f64,
    /// User error bound `e` on the relative error of δ⋆ (SEA).
    pub error_bound: f64,
    /// CI confidence level `1 − α` (SEA).
    pub confidence: f64,
    /// Hoeffding estimation error ϵ (SEA, Theorem 10).
    pub hoeffding_epsilon: f64,
    /// Hoeffding confidence `1 − β` (SEA, Theorem 10).
    pub hoeffding_confidence: f64,
    /// Initial sampling fraction λ (SEA).
    pub lambda: f64,
    /// Size window `[l, h]` (required by [`Method::SeaSizeBounded`]).
    pub size_bound: Option<(usize, usize)>,
    /// RNG seed for the sampling methods; runs are deterministic per
    /// seed.
    pub seed: u64,
    /// Pruning strategies for [`Method::Exact`] (Table IV ablation).
    pub pruning: PruningConfig,
    /// Greedy warm start for [`Method::Exact`].
    pub warm_start: bool,
    /// Search-tree state budget ([`Method::Exact`] / [`Method::EVac`]).
    pub state_budget: Option<u64>,
    /// Wall-clock budget ([`Method::Exact`] / [`Method::EVac`]).
    pub time_budget: Option<Duration>,
    /// Peeling-iteration cap for [`Method::Vac`].
    pub vac_iteration_cap: Option<usize>,
    /// Root-size guard for [`Method::EVac`]: refuse larger roots with
    /// [`CsagError::BudgetExhausted`], mirroring the paper's `-` rows.
    pub evac_max_root: Option<usize>,
    /// Maximum SEA sampling/estimation rounds.
    pub max_rounds: usize,
}

impl CommunityQuery {
    /// A query with the paper's §VII-A default parameters.
    pub fn new(method: Method, q: NodeId) -> Self {
        let sea = SeaParams::default();
        let exact = ExactParams::default();
        CommunityQuery {
            method,
            q,
            k: sea.k,
            model: sea.model,
            gamma: DistanceParams::default().gamma,
            error_bound: sea.error_bound,
            confidence: sea.confidence,
            hoeffding_epsilon: sea.hoeffding_epsilon,
            hoeffding_confidence: sea.hoeffding_confidence,
            lambda: sea.lambda,
            size_bound: None,
            seed: 42,
            pruning: exact.pruning,
            warm_start: exact.warm_start,
            state_budget: None,
            time_budget: None,
            vac_iteration_cap: Some(5_000),
            evac_max_root: Some(400),
            max_rounds: sea.max_rounds,
        }
    }

    /// Retargets the query to another node (handy for replaying one
    /// configured template across a query workload).
    pub fn with_query(mut self, q: NodeId) -> Self {
        self.q = q;
        self
    }

    /// Switches the answering method.
    pub fn with_method(mut self, method: Method) -> Self {
        self.method = method;
        self
    }

    /// Sets `k`.
    pub fn with_k(mut self, k: u32) -> Self {
        self.k = k;
        self
    }

    /// Sets the community model.
    pub fn with_model(mut self, model: CommunityModel) -> Self {
        self.model = model;
        self
    }

    /// Sets the balance factor γ.
    pub fn with_gamma(mut self, gamma: f64) -> Self {
        self.gamma = gamma;
        self
    }

    /// Sets the user error bound `e`.
    pub fn with_error_bound(mut self, e: f64) -> Self {
        self.error_bound = e;
        self
    }

    /// Sets the CI confidence level `1 − α`.
    pub fn with_confidence(mut self, c: f64) -> Self {
        self.confidence = c;
        self
    }

    /// Sets the Hoeffding pair `(ϵ, 1 − β)`.
    pub fn with_hoeffding(mut self, epsilon: f64, confidence: f64) -> Self {
        self.hoeffding_epsilon = epsilon;
        self.hoeffding_confidence = confidence;
        self
    }

    /// Sets the initial sampling fraction λ.
    pub fn with_lambda(mut self, lambda: f64) -> Self {
        self.lambda = lambda;
        self
    }

    /// Sets the size window `[l, h]`.
    pub fn with_size_bound(mut self, l: usize, h: usize) -> Self {
        self.size_bound = Some((l, h));
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the exact method's pruning configuration.
    pub fn with_pruning(mut self, pruning: PruningConfig) -> Self {
        self.pruning = pruning;
        self
    }

    /// Disables the exact method's greedy warm start.
    pub fn without_warm_start(mut self) -> Self {
        self.warm_start = false;
        self
    }

    /// Sets a search-tree state budget.
    pub fn with_state_budget(mut self, states: u64) -> Self {
        self.state_budget = Some(states);
        self
    }

    /// Sets a wall-clock budget.
    pub fn with_time_budget(mut self, budget: Duration) -> Self {
        self.time_budget = Some(budget);
        self
    }

    /// Caps approximate VAC's peeling iterations (`None` = unbounded).
    pub fn with_vac_iteration_cap(mut self, cap: Option<usize>) -> Self {
        self.vac_iteration_cap = cap;
        self
    }

    /// Sets E-VAC's root-size guard (`None` = accept any root).
    pub fn with_evac_max_root(mut self, max_root: Option<usize>) -> Self {
        self.evac_max_root = max_root;
        self
    }

    /// Sets the maximum SEA sampling/estimation rounds.
    pub fn with_max_rounds(mut self, rounds: usize) -> Self {
        self.max_rounds = rounds;
        self
    }

    /// Validates and returns the query (the build-time gate).
    ///
    /// # Errors
    /// [`CsagError::InvalidParams`] naming the offending parameter.
    pub fn build(self) -> Result<Self, CsagError> {
        self.validate()?;
        Ok(self)
    }

    /// Checks every parameter for runnability; see
    /// [`CommunityQuery::build`].
    ///
    /// # Errors
    /// [`CsagError::InvalidParams`] naming the offending parameter.
    pub fn validate(&self) -> Result<(), CsagError> {
        if !(0.0..=1.0).contains(&self.gamma) {
            return Err(CsagError::invalid(format!(
                "gamma must lie in [0, 1] (got {})",
                self.gamma
            )));
        }
        // The SEA parameter envelope covers k ≥ 2, the accuracy pair, the
        // Hoeffding pair, λ, the size bound, and max_rounds — shared by
        // every method so a query stays replayable across methods.
        self.sea_params().validate()?;
        if self.method == Method::SeaSizeBounded && self.size_bound.is_none() {
            return Err(CsagError::invalid(
                "method sea-size-bounded requires a size bound; call with_size_bound(l, h)",
            ));
        }
        if self.state_budget == Some(0) {
            return Err(CsagError::invalid("state budget of 0 can never search"));
        }
        Ok(())
    }

    /// Derives a query that fits the remaining wall-clock budget — the
    /// serving layer's accuracy-for-latency seam (the paper's whole
    /// trade-off, applied per request).
    ///
    /// With `remaining ≥ full_effort` the query runs untouched apart
    /// from clamping any wall-clock budget to the deadline. Below that,
    /// effort scales with `r = remaining / full_effort` and the second
    /// element of the return value is `true`:
    ///
    /// * **SEA variants** — fewer sampling/estimation rounds
    ///   (`⌈max_rounds·r⌉`, at least 1), a smaller initial sampling
    ///   fraction, and a proportionally looser requested error bound
    ///   `e/r` (capped below 1). The result's certificate still reports
    ///   the bound *actually achieved*, so degradation is observable,
    ///   never silent.
    /// * **Exact / E-VAC** — a state budget derived from the remaining
    ///   milliseconds (a coarse states-per-millisecond calibration;
    ///   the exact wall-clock budget backstops it), so a late request
    ///   returns a [`CsagError::BudgetExhausted`] best-so-far instead
    ///   of blowing through the deadline.
    /// * **VAC** — a proportionally smaller peeling-iteration cap.
    /// * **ACQ / ATC** — unchanged (already cheap local heuristics).
    ///
    /// The derived query always still passes
    /// [`CommunityQuery::validate`].
    pub fn fit_to_deadline(&self, remaining: Duration, full_effort: Duration) -> (Self, bool) {
        /// Floor effort tier: even an already-expired deadline gets 5%
        /// of the full-effort envelope — degrading to a small bounded
        /// slice, never to nothing.
        const MIN_RATIO: f64 = 0.05;
        let mut q = self.clone();
        if remaining >= full_effort || full_effort.is_zero() {
            // Roomy deadline: full effort, with the deadline as a hard
            // wall-clock backstop for the methods that understand one
            // (others ignore it, harmlessly).
            q.time_budget = Some(match self.time_budget {
                Some(t) => t.min(remaining),
                None => remaining,
            });
            return (q, false);
        }
        let granted = remaining.max(full_effort.mul_f64(MIN_RATIO));
        q.time_budget = Some(match self.time_budget {
            Some(t) => t.min(granted),
            None => granted,
        });
        let r = (granted.as_secs_f64() / full_effort.as_secs_f64()).clamp(MIN_RATIO, 1.0);
        match q.method {
            Method::Sea | Method::SeaSizeBounded | Method::SeaHetero => {
                // Rounds are the latency lever (each incremental round
                // re-samples and re-estimates); the initial sampling
                // fraction stays intact and at least one incremental
                // recovery round survives (a sample that misses the
                // community entirely can still grow once), so a
                // degraded answer is still an answer — just with a
                // proportionally looser bound.
                let floor = 2.min(q.max_rounds).max(1);
                q.max_rounds = ((q.max_rounds as f64 * r).ceil() as usize).max(floor);
                q.error_bound = (q.error_bound / r).min(0.95);
            }
            Method::Exact | Method::EVac => {
                // Calibration: roughly how many search-tree states a
                // millisecond buys on commodity hardware; the wall-clock
                // budget above backstops machines that run slower.
                const STATES_PER_MS: u64 = 2_000;
                let derived = (granted.as_millis() as u64)
                    .saturating_mul(STATES_PER_MS)
                    .max(256);
                q.state_budget = Some(q.state_budget.map_or(derived, |b| b.min(derived)));
            }
            Method::Vac => {
                if let Some(cap) = q.vac_iteration_cap {
                    // Scale down with a floor, but never past the
                    // caller's own cap — degradation must not do MORE
                    // work than the undegraded query.
                    q.vac_iteration_cap = Some(((cap as f64 * r) as usize).max(64).min(cap));
                }
            }
            Method::Acq | Method::Atc => {}
        }
        (q, true)
    }

    /// The distance parameters implied by `gamma`.
    pub fn distance_params(&self) -> DistanceParams {
        DistanceParams::with_gamma(self.gamma)
    }

    /// The equivalent `csag-core` SEA parameters.
    pub(crate) fn sea_params(&self) -> SeaParams {
        let mut p = SeaParams {
            k: self.k,
            model: self.model,
            error_bound: self.error_bound,
            confidence: self.confidence,
            hoeffding_epsilon: self.hoeffding_epsilon,
            hoeffding_confidence: self.hoeffding_confidence,
            lambda: self.lambda,
            max_rounds: self.max_rounds,
            ..SeaParams::default()
        };
        p.size_bound = self.size_bound;
        p
    }

    /// The equivalent `csag-core` exact parameters.
    pub(crate) fn exact_params(&self) -> ExactParams {
        ExactParams {
            k: self.k,
            model: self.model,
            pruning: self.pruning,
            state_budget: self.state_budget,
            time_budget: self.time_budget,
            warm_start: self.warm_start,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_names_round_trip() {
        for m in Method::ALL {
            assert_eq!(m.name().parse::<Method>().unwrap(), m);
        }
        assert!("bogus".parse::<Method>().is_err());
    }

    #[test]
    fn build_validates_every_knob() {
        let ok = CommunityQuery::new(Method::Sea, 0).build();
        assert!(ok.is_ok());
        let cases = [
            CommunityQuery::new(Method::Sea, 0).with_k(1),
            CommunityQuery::new(Method::Sea, 0).with_k(0),
            CommunityQuery::new(Method::Sea, 0).with_error_bound(0.0),
            CommunityQuery::new(Method::Sea, 0).with_error_bound(2.0),
            CommunityQuery::new(Method::Sea, 0).with_confidence(1.0),
            CommunityQuery::new(Method::Sea, 0).with_gamma(1.5),
            CommunityQuery::new(Method::Sea, 0).with_gamma(-0.1),
            CommunityQuery::new(Method::Sea, 0).with_lambda(0.0),
            CommunityQuery::new(Method::Sea, 0).with_size_bound(9, 4),
            CommunityQuery::new(Method::SeaSizeBounded, 0),
            CommunityQuery::new(Method::Exact, 0).with_state_budget(0),
        ];
        for c in cases {
            let shown = format!("{c:?}");
            assert!(
                matches!(c.build(), Err(CsagError::InvalidParams { .. })),
                "{shown} should fail validation"
            );
        }
    }

    #[test]
    fn deadline_fit_degrades_but_stays_valid() {
        let full = Duration::from_millis(200);
        // A roomy deadline only clamps the wall-clock budget.
        let q = CommunityQuery::new(Method::Sea, 0);
        let (fitted, degraded) = q.fit_to_deadline(Duration::from_secs(1), full);
        assert!(!degraded);
        assert_eq!(fitted.max_rounds, q.max_rounds);
        assert_eq!(fitted.time_budget, Some(Duration::from_secs(1)));

        // A tight deadline cheapens SEA: fewer rounds, looser bound.
        let (fitted, degraded) = q.fit_to_deadline(Duration::from_millis(20), full);
        assert!(degraded);
        assert!(fitted.max_rounds < q.max_rounds && fitted.max_rounds >= 1);
        assert!(fitted.error_bound > q.error_bound && fitted.error_bound < 1.0);
        fitted.validate().expect("derived query must stay runnable");

        // Exact gains a state budget derived from the remaining time,
        // never looser than one the caller already set.
        let q = CommunityQuery::new(Method::Exact, 0).with_state_budget(500);
        let (fitted, degraded) = q.fit_to_deadline(Duration::from_millis(10), full);
        assert!(degraded);
        assert_eq!(fitted.state_budget, Some(500), "caller budget was tighter");
        let q = CommunityQuery::new(Method::Exact, 0);
        let (fitted, _) = q.fit_to_deadline(Duration::from_millis(10), full);
        assert!(fitted.state_budget.unwrap() >= 256);
        fitted.validate().unwrap();

        // An already-expired deadline still yields a runnable floor
        // tier, keeping one incremental recovery round.
        let (fitted, degraded) =
            CommunityQuery::new(Method::Sea, 0).fit_to_deadline(Duration::ZERO, full);
        assert!(degraded);
        assert_eq!(fitted.max_rounds, 2);
        assert!(fitted.time_budget.unwrap() > Duration::ZERO, "floor grant");
        fitted.validate().unwrap();
    }

    #[test]
    fn knobs_map_onto_core_params() {
        let q = CommunityQuery::new(Method::Exact, 3)
            .with_k(5)
            .with_model(CommunityModel::KTruss)
            .with_pruning(PruningConfig::NO_P3)
            .with_state_budget(100)
            .without_warm_start();
        let e = q.exact_params();
        assert_eq!(e.k, 5);
        assert_eq!(e.model, CommunityModel::KTruss);
        assert_eq!(e.pruning, PruningConfig::NO_P3);
        assert_eq!(e.state_budget, Some(100));
        assert!(!e.warm_start);

        let q = CommunityQuery::new(Method::Sea, 3)
            .with_k(4)
            .with_error_bound(0.1)
            .with_hoeffding(0.2, 0.9)
            .with_lambda(0.5)
            .with_size_bound(3, 9);
        let s = q.sea_params();
        assert_eq!(s.k, 4);
        assert_eq!(s.error_bound, 0.1);
        assert_eq!(s.hoeffding_epsilon, 0.2);
        assert_eq!(s.hoeffding_confidence, 0.9);
        assert_eq!(s.lambda, 0.5);
        assert_eq!(s.size_bound, Some((3, 9)));
    }
}
