//! Batch execution: the generalized parallel executor (promoted out of
//! the bench harness's `runner::parallel_map`) plus
//! [`Engine::run_batch`], so the same code path serves experiment tables
//! and concurrent production callers.

use super::error::CsagError;
use super::query::CommunityQuery;
use super::result::CommunityResult;
use super::Engine;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Evaluates `f` over all `items` in parallel (one `std::thread::scope`,
/// `threads` workers pulling from a shared work queue), preserving item
/// order in the output. With `threads <= 1` or a single item the call
/// degenerates to a plain sequential map.
///
/// This is the workspace's one parallel executor: the bench harness maps
/// query workloads through it and [`Engine::run_batch`] builds on it.
pub fn parallel_map<I, T, F>(items: &[I], threads: usize, f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    parallel_map_init(items, threads, || (), |(), item| f(item))
}

/// [`parallel_map`] with *per-worker state*: each worker thread calls
/// `init()` once and threads the resulting value mutably through every
/// item it processes. This is how [`Engine::run_batch`] gives each worker
/// a private [`csag_graph::QueryWorkspace`] — queries on one thread reuse
/// one set of scratch buffers instead of allocating per query.
pub fn parallel_map_init<I, T, W, Init, F>(items: &[I], threads: usize, init: Init, f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    Init: Fn() -> W + Sync,
    F: Fn(&mut W, &I) -> T + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads == 1 {
        let mut state = init();
        return items.iter().map(|item| f(&mut state, item)).collect();
    }
    let next = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, T)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut state = init();
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(&mut state, &items[i])));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    indexed.sort_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, v)| v).collect()
}

/// Default worker count for [`Engine::run_batch`].
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
}

impl Engine {
    /// Runs a batch of queries in parallel over the shared per-graph
    /// state, one result per query in input order. Worker count defaults
    /// to the machine's available parallelism; see
    /// [`Engine::run_batch_with_threads`] to pin it.
    pub fn run_batch(&self, queries: &[CommunityQuery]) -> Vec<Result<CommunityResult, CsagError>> {
        self.run_batch_with_threads(queries, available_threads())
    }

    /// [`Engine::run_batch`] with an explicit worker count. Each worker
    /// owns one [`csag_graph::QueryWorkspace`] for its whole share of the
    /// batch, so steady-state queries reuse scratch instead of
    /// reallocating.
    pub fn run_batch_with_threads(
        &self,
        queries: &[CommunityQuery],
        threads: usize,
    ) -> Vec<Result<CommunityResult, CsagError>> {
        parallel_map_init(
            queries,
            threads,
            csag_graph::QueryWorkspace::new,
            |ws, q| self.run_with_workspace(q, ws),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u32> = (0..37).collect();
        let out = parallel_map(&items, 4, |&q| q * 2);
        assert_eq!(out, (0..37).map(|q| q * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_degenerate_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(&empty, 8, |&q| q).is_empty());
        assert_eq!(parallel_map(&[5u32], 8, |&q| q + 1), vec![6]);
        assert_eq!(parallel_map(&[1u32, 2], 0, |&q| q), vec![1, 2]);
    }

    #[test]
    fn parallel_map_takes_non_copy_items() {
        let items = vec![vec![1u32, 2], vec![3], vec![]];
        let lens = parallel_map(&items, 2, |v| v.len());
        assert_eq!(lens, vec![2, 1, 0]);
    }
}
