//! `csag-wire` parsing and rendering: the service's JSON-lines
//! protocol, shared by the sequential stdin/stdout flavor (v1) and the
//! pipelined socket transport (v2, [`super::transport`]).
//!
//! **The normative grammar lives in `docs/wire-protocol.md`** —
//! request vocabulary, response envelope, id semantics, and the
//! per-flavor ordering guarantees. The short version: a request is one
//! flat JSON object per line (unknown keys rejected), and a response is
//! the serving envelope around the engine's one result serializer
//! ([`CommunityResult::to_json`](crate::engine::CommunityResult::to_json)),
//! so the `"result"` object is byte-identical to `csag query --json`
//! for the same query (modulo wall-clock `timings_ms`). Shed and
//! invalid requests answer with the same envelope carrying an
//! `"error"` object ([`error_to_json`]), so a client parses exactly
//! one shape.

use crate::engine::result::{json_f64, json_string, push_key, push_kv};
use crate::engine::{error_to_json, CommunityQuery, CsagError, Method};
use crate::service::request::{Priority, Request, Response};
use csag_decomp::CommunityModel;
use std::time::Duration;

/// One scalar value of a flat `csag-wire` JSON object.
#[derive(Clone, Debug, PartialEq)]
enum Scalar {
    String(String),
    Number(f64),
    Bool(bool),
    Null,
}

/// A parsed wire request: the service [`Request`] plus the client's id
/// token, echoed verbatim into the response (so string ids stay
/// strings and numeric ids stay numbers).
#[derive(Clone, Debug)]
pub struct WireRequest {
    /// The id to echo, as a raw JSON token (already quoted if it was a
    /// string).
    pub id: String,
    /// The service request the line described.
    pub request: Request,
}

/// Parses one `csag-wire v1` request line.
///
/// `line_no` provides the default id for lines that carry none.
///
/// # Errors
/// A human-readable description of the first syntax or vocabulary
/// problem (unknown key, wrong type, missing `q`, malformed JSON).
pub fn parse_wire_request(line: &str, line_no: usize) -> Result<WireRequest, String> {
    let fields = parse_flat_object(line)?;
    let mut id = line_no.to_string();
    let mut q: Option<u32> = None;
    let mut method = Method::Exact;
    let mut query_mods: Vec<Box<dyn FnOnce(CommunityQuery) -> CommunityQuery>> = Vec::new();
    let mut size_l: Option<usize> = None;
    let mut size_h: Option<usize> = None;
    let mut priority = Priority::Standard;
    let mut deadline: Option<Duration> = None;
    let mut class: Option<String> = None;
    let mut pin_epoch: Option<u64> = None;

    for (key, value) in fields {
        match key.as_str() {
            "id" => {
                id = match value {
                    Scalar::String(s) => json_string(&s),
                    // Integral ids echo as integers, like they arrived.
                    Scalar::Number(n) if n.fract() == 0.0 && n.abs() < 9e15 => {
                        format!("{}", n as i64)
                    }
                    Scalar::Number(n) => json_f64(n),
                    other => {
                        return Err(format!("\"id\" must be a string or number, got {other:?}"))
                    }
                }
            }
            "q" => q = Some(u32_field(&key, &value)?),
            "method" => {
                method = str_field(&key, &value)?
                    .parse()
                    .map_err(|e: CsagError| e.to_string())?
            }
            "k" => {
                let k = u32_field(&key, &value)?;
                query_mods.push(Box::new(move |c| c.with_k(k)));
            }
            "model" => {
                let model = match str_field(&key, &value)?.as_str() {
                    "k-core" => CommunityModel::KCore,
                    "k-truss" => CommunityModel::KTruss,
                    other => return Err(format!("unknown model `{other}` (k-core | k-truss)")),
                };
                query_mods.push(Box::new(move |c| c.with_model(model)));
            }
            "gamma" => {
                let g = num_field(&key, &value)?;
                query_mods.push(Box::new(move |c| c.with_gamma(g)));
            }
            "error" => {
                let e = num_field(&key, &value)?;
                query_mods.push(Box::new(move |c| c.with_error_bound(e)));
            }
            "confidence" => {
                let c0 = num_field(&key, &value)?;
                query_mods.push(Box::new(move |c| c.with_confidence(c0)));
            }
            "lambda" => {
                let l = num_field(&key, &value)?;
                query_mods.push(Box::new(move |c| c.with_lambda(l)));
            }
            "seed" => {
                let s = uint_field(&key, &value)?;
                query_mods.push(Box::new(move |c| c.with_seed(s)));
            }
            "size_l" => size_l = Some(uint_field(&key, &value)? as usize),
            "size_h" => size_h = Some(uint_field(&key, &value)? as usize),
            "budget_ms" => {
                let ms = num_field(&key, &value)?;
                if !ms.is_finite() || ms < 0.0 {
                    return Err("\"budget_ms\" must be non-negative".to_string());
                }
                query_mods.push(Box::new(move |c| {
                    c.with_time_budget(Duration::from_secs_f64(ms / 1e3))
                }));
            }
            "budget_states" => {
                let b = uint_field(&key, &value)?;
                query_mods.push(Box::new(move |c| c.with_state_budget(b)));
            }
            "priority" => {
                priority = str_field(&key, &value)?
                    .parse()
                    .map_err(|e: CsagError| e.to_string())?
            }
            "deadline_ms" => {
                let ms = num_field(&key, &value)?;
                if !ms.is_finite() || ms < 0.0 {
                    return Err("\"deadline_ms\" must be non-negative".to_string());
                }
                deadline = Some(Duration::from_secs_f64(ms / 1e3));
            }
            "class" => class = Some(str_field(&key, &value)?),
            "epoch" => pin_epoch = Some(uint_field(&key, &value)?),
            other => return Err(format!("unknown csag-wire key \"{other}\"")),
        }
    }
    let q = q.ok_or("missing required key \"q\"")?;
    let mut query = CommunityQuery::new(method, q);
    for m in query_mods {
        query = m(query);
    }
    match (size_l, size_h) {
        (Some(l), Some(h)) => {
            query = query.with_size_bound(l, h);
            if query.method == Method::Sea {
                query = query.with_method(Method::SeaSizeBounded);
            }
        }
        (None, None) => {}
        _ => return Err("\"size_l\" and \"size_h\" must be given together".to_string()),
    }
    let mut request = Request::new(query).with_priority(priority);
    if let Some(d) = deadline {
        request = request.with_deadline(d);
    }
    if let Some(c) = class {
        request = request.with_class(c);
    }
    if let Some(e) = pin_epoch {
        request = request.with_epoch(e);
    }
    Ok(WireRequest { id, request })
}

/// Serializes one answered request as a `csag-wire v1` response line.
/// The `"result"` object is produced by [`CommunityResult::to_json`] —
/// the exact serializer behind `csag query --json` — and errors by
/// [`error_to_json`].
///
/// [`CommunityResult::to_json`]: crate::engine::CommunityResult::to_json
pub fn response_to_json(id: &str, resp: &Response) -> String {
    let mut s = String::with_capacity(256);
    s.push('{');
    push_kv(&mut s, "id", id);
    s.push(',');
    push_kv(&mut s, "epoch", &resp.epoch.to_string());
    s.push(',');
    push_kv(&mut s, "priority", &json_string(resp.priority.name()));
    s.push(',');
    push_kv(&mut s, "class", &json_string(resp.class.label()));
    s.push(',');
    push_kv(&mut s, "coalesced", bool_lit(resp.coalesced));
    s.push(',');
    push_kv(&mut s, "degraded", bool_lit(resp.degraded));
    s.push(',');
    push_kv(
        &mut s,
        "queue_ms",
        &json_f64(resp.queue_wait.as_secs_f64() * 1e3),
    );
    s.push(',');
    push_kv(
        &mut s,
        "deadline_slack_ms",
        &resp
            .deadline_slack_ms
            .map(json_f64)
            .unwrap_or_else(|| "null".into()),
    );
    s.push(',');
    match &resp.outcome {
        Ok(result) => {
            push_key(&mut s, "result");
            s.push_str(&result.to_json());
        }
        Err(err) => {
            push_key(&mut s, "error");
            s.push_str(&error_to_json(err));
        }
    }
    s.push('}');
    s
}

/// Serializes a request that never produced a [`Response`] (shed at
/// admission, or malformed) in the same envelope shape, so clients
/// parse exactly one schema.
pub fn rejection_to_json(id: &str, err: &CsagError) -> String {
    let mut s = String::with_capacity(128);
    s.push('{');
    push_kv(&mut s, "id", id);
    s.push(',');
    push_key(&mut s, "error");
    s.push_str(&error_to_json(err));
    s.push('}');
    s
}

fn bool_lit(b: bool) -> &'static str {
    if b {
        "true"
    } else {
        "false"
    }
}

fn str_field(key: &str, v: &Scalar) -> Result<String, String> {
    match v {
        Scalar::String(s) => Ok(s.clone()),
        other => Err(format!("\"{key}\" must be a string, got {other:?}")),
    }
}

fn num_field(key: &str, v: &Scalar) -> Result<f64, String> {
    match v {
        Scalar::Number(n) => Ok(*n),
        other => Err(format!("\"{key}\" must be a number, got {other:?}")),
    }
}

fn uint_field(key: &str, v: &Scalar) -> Result<u64, String> {
    let n = num_field(key, v)?;
    if n < 0.0 || n.fract() != 0.0 || n > u64::MAX as f64 {
        return Err(format!("\"{key}\" must be a non-negative integer, got {n}"));
    }
    Ok(n as u64)
}

/// [`uint_field`] bounded to node-id/k range — out-of-range values are
/// rejected loudly, never silently wrapped to a different node.
fn u32_field(key: &str, v: &Scalar) -> Result<u32, String> {
    let n = uint_field(key, v)?;
    u32::try_from(n).map_err(|_| format!("\"{key}\" must fit in 32 bits, got {n}"))
}

/// Parses a flat JSON object of scalars — the whole grammar `csag-wire`
/// requests need, in ~100 lines instead of a serde dependency.
fn parse_flat_object(line: &str) -> Result<Vec<(String, Scalar)>, String> {
    let mut chars = line.char_indices().peekable();
    let mut fields = Vec::new();
    skip_ws(&mut chars);
    expect(&mut chars, '{')?;
    skip_ws(&mut chars);
    if matches!(chars.peek(), Some((_, '}'))) {
        chars.next();
        return finish(chars, fields);
    }
    loop {
        skip_ws(&mut chars);
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        expect(&mut chars, ':')?;
        skip_ws(&mut chars);
        let value = parse_scalar(&mut chars)?;
        fields.push((key, value));
        skip_ws(&mut chars);
        match chars.next() {
            Some((_, ',')) => continue,
            Some((_, '}')) => return finish(chars, fields),
            Some((i, c)) => return Err(format!("expected `,` or `}}` at byte {i}, got `{c}`")),
            None => return Err("unterminated object".to_string()),
        }
    }
}

type Chars<'a> = std::iter::Peekable<std::str::CharIndices<'a>>;

fn finish(
    mut chars: Chars<'_>,
    fields: Vec<(String, Scalar)>,
) -> Result<Vec<(String, Scalar)>, String> {
    skip_ws(&mut chars);
    match chars.next() {
        None => Ok(fields),
        Some((i, c)) => Err(format!("trailing content at byte {i}: `{c}`")),
    }
}

fn skip_ws(chars: &mut Chars<'_>) {
    while matches!(chars.peek(), Some((_, c)) if c.is_ascii_whitespace()) {
        chars.next();
    }
}

fn expect(chars: &mut Chars<'_>, want: char) -> Result<(), String> {
    match chars.next() {
        Some((_, c)) if c == want => Ok(()),
        Some((i, c)) => Err(format!("expected `{want}` at byte {i}, got `{c}`")),
        None => Err(format!("expected `{want}`, got end of line")),
    }
}

fn parse_string(chars: &mut Chars<'_>) -> Result<String, String> {
    expect(chars, '"')?;
    let mut out = String::new();
    loop {
        match chars.next() {
            Some((_, '"')) => return Ok(out),
            Some((_, '\\')) => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, '/')) => out.push('/'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 't')) => out.push('\t'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, 'u')) => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        let (_, h) = chars.next().ok_or("truncated \\u escape")?;
                        code = code * 16 + h.to_digit(16).ok_or("bad \\u escape")?;
                    }
                    out.push(char::from_u32(code).ok_or("non-scalar \\u escape")?);
                }
                Some((i, c)) => return Err(format!("bad escape `\\{c}` at byte {i}")),
                None => return Err("unterminated string".to_string()),
            },
            Some((_, c)) => out.push(c),
            None => return Err("unterminated string".to_string()),
        }
    }
}

fn parse_scalar(chars: &mut Chars<'_>) -> Result<Scalar, String> {
    match chars.peek().copied() {
        Some((_, '"')) => Ok(Scalar::String(parse_string(chars)?)),
        Some((_, 't')) => take_lit(chars, "true").map(|()| Scalar::Bool(true)),
        Some((_, 'f')) => take_lit(chars, "false").map(|()| Scalar::Bool(false)),
        Some((_, 'n')) => take_lit(chars, "null").map(|()| Scalar::Null),
        Some((i, c)) if c == '-' || c.is_ascii_digit() => {
            let mut lit = String::new();
            while let Some(&(_, c)) = chars.peek() {
                if c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E' || c.is_ascii_digit() {
                    lit.push(c);
                    chars.next();
                } else {
                    break;
                }
            }
            lit.parse::<f64>()
                .map(Scalar::Number)
                .map_err(|_| format!("bad number `{lit}` at byte {i}"))
        }
        Some((i, c)) => Err(format!(
            "csag-wire values are scalars; unexpected `{c}` at byte {i}"
        )),
        None => Err("expected a value, got end of line".to_string()),
    }
}

fn take_lit(chars: &mut Chars<'_>, lit: &str) -> Result<(), String> {
    for want in lit.chars() {
        match chars.next() {
            Some((_, c)) if c == want => {}
            _ => return Err(format!("expected literal `{lit}`")),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn full_request_round_trips_every_field() {
        let line = r#"{"id": "req-1", "method": "sea", "q": 5, "k": 3, "model": "k-truss",
            "gamma": 0.25, "error": 0.1, "confidence": 0.9, "lambda": 0.5, "seed": 7,
            "priority": "interactive", "deadline_ms": 50, "class": "tenant-a", "epoch": 2}"#;
        let wire = parse_wire_request(line, 0).unwrap();
        assert_eq!(wire.id, "\"req-1\"");
        let q = &wire.request.query;
        assert_eq!(q.method, Method::Sea);
        assert_eq!((q.q, q.k), (5, 3));
        assert_eq!(q.model, CommunityModel::KTruss);
        assert_eq!((q.gamma, q.error_bound), (0.25, 0.1));
        assert_eq!((q.confidence, q.lambda, q.seed), (0.9, 0.5, 7));
        assert_eq!(wire.request.priority, Priority::Interactive);
        assert_eq!(wire.request.deadline, Some(Duration::from_millis(50)));
        assert_eq!(wire.request.class.label(), "tenant-a");
        assert_eq!(wire.request.pin_epoch, Some(2));
    }

    #[test]
    fn defaults_and_numeric_ids() {
        let wire = parse_wire_request(r#"{"q": 9}"#, 4).unwrap();
        assert_eq!(wire.id, "4", "line number is the default id");
        assert_eq!(wire.request.query.method, Method::Exact);
        assert_eq!(wire.request.priority, Priority::Standard);
        let wire = parse_wire_request(r#"{"q": 9, "id": 12}"#, 0).unwrap();
        assert_eq!(wire.id, "12", "numeric ids echo as numbers");
    }

    #[test]
    fn size_window_switches_sea_to_size_bounded() {
        let wire = parse_wire_request(r#"{"q": 1, "method": "sea", "size_l": 3, "size_h": 9}"#, 0)
            .unwrap();
        assert_eq!(wire.request.query.method, Method::SeaSizeBounded);
        assert_eq!(wire.request.query.size_bound, Some((3, 9)));
        assert!(parse_wire_request(r#"{"q": 1, "size_l": 3}"#, 0).is_err());
    }

    #[test]
    fn vocabulary_is_strict() {
        for (line, needle) in [
            (r#"{"k": 3}"#, "missing required key"),
            (r#"{"q": 1, "mehtod": "sea"}"#, "unknown csag-wire key"),
            (r#"{"q": 1, "method": "bogus"}"#, "unknown method"),
            (r#"{"q": 1.5}"#, "non-negative integer"),
            (r#"{"q": -1}"#, "non-negative integer"),
            (r#"{"q": 4294967301}"#, "32 bits"),
            (r#"{"q": 1, "k": 4294967298}"#, "32 bits"),
            (r#"{"q": 1"#, "unterminated"),
            (r#"{"q": [1]}"#, "scalars"),
            (r#"{"q": 1} trailing"#, "trailing"),
            (r#"{"q": 1, "deadline_ms": -5}"#, "non-negative"),
            (r#"{"q": 1, "epoch": -2}"#, "non-negative integer"),
            (r#"{"q": 1, "epoch": 1.5}"#, "non-negative integer"),
            (r#"{"q": 1, "priority": "urgent"}"#, "unknown priority"),
        ] {
            let err = parse_wire_request(line, 0).unwrap_err();
            assert!(
                err.contains(needle),
                "`{line}` → `{err}` (wanted `{needle}`)"
            );
        }
    }

    #[test]
    fn response_envelope_embeds_the_one_result_serializer() {
        use crate::engine::result::{CommunityResult, PhaseTimings, Provenance};
        let result = Arc::new(CommunityResult {
            q: 2,
            epoch: 3,
            community: vec![1, 2],
            delta: 0.5,
            certificate: None,
            timings: PhaseTimings::default(),
            provenance: Provenance::new(Method::Exact, 3, CommunityModel::KCore, 0),
        });
        let resp = Response {
            request_id: 9,
            epoch: 3,
            priority: Priority::Interactive,
            class: crate::service::QueryClass::new("t"),
            coalesced: true,
            degraded: false,
            queue_wait: Duration::from_millis(2),
            deadline_slack_ms: Some(-1.5),
            sequence: 1,
            outcome: Ok(Arc::clone(&result)),
        };
        let j = response_to_json("\"req\"", &resp);
        assert!(j.starts_with("{\"id\":\"req\",\"epoch\":3,"));
        assert!(j.contains("\"coalesced\":true"));
        assert!(j.contains("\"deadline_slack_ms\":-1.5"));
        assert!(
            j.contains(&format!("\"result\":{}", result.to_json())),
            "envelope must embed to_json verbatim: {j}"
        );
        assert_eq!(j.matches('{').count(), j.matches('}').count());

        let resp = Response {
            outcome: Err(CsagError::Overloaded {
                retry_after: Duration::from_millis(3),
            }),
            ..resp
        };
        let j = response_to_json("1", &resp);
        assert!(j.contains("\"error\":{\"error\":\"overloaded\""));
        let j = rejection_to_json("1", &CsagError::invalid("nope"));
        assert!(j.starts_with("{\"id\":1,\"error\":"));
    }
}
