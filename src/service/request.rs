//! The serving request/response vocabulary: [`Request`] (a
//! [`CommunityQuery`] plus serving intent — deadline, priority, tenant
//! class), [`Ticket`] (the waiter's handle), and [`Response`] (the
//! serving envelope around the engine's [`CommunityResult`]).

use crate::engine::{CommunityQuery, CommunityResult, CsagError};
use std::fmt;
use std::str::FromStr;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

/// Scheduling priority of a request. Higher priorities dequeue first;
/// within a priority the queue is FIFO (no starvation *within* a class;
/// sustained high-priority load can starve lower tiers by design —
/// shedding, not queueing, is the overload mechanism).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Best-effort background work (analytics refills, prefetching).
    Batch,
    /// The default tier.
    Standard,
    /// Latency-sensitive user-facing requests.
    Interactive,
}

impl Priority {
    /// Stable lower-case name (also the wire / JSON spelling).
    pub fn name(self) -> &'static str {
        match self {
            Priority::Batch => "batch",
            Priority::Standard => "standard",
            Priority::Interactive => "interactive",
        }
    }

    /// Every priority, ascending.
    pub const ALL: [Priority; 3] = [Priority::Batch, Priority::Standard, Priority::Interactive];

    /// Dense index (for per-priority metrics arrays).
    pub(crate) fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Priority {
    type Err = CsagError;

    fn from_str(s: &str) -> Result<Self, CsagError> {
        Priority::ALL
            .into_iter()
            .find(|p| p.name() == s)
            .ok_or_else(|| {
                CsagError::invalid(format!(
                    "unknown priority `{s}` (expected one of: batch, standard, interactive)"
                ))
            })
    }
}

/// A tenant/workload class for admission accounting. Classes are cheap
/// labels — the admission controller can cap each class's share of the
/// queue so one tenant's flood cannot starve the rest.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct QueryClass(String);

impl QueryClass {
    /// The class every request belongs to unless it says otherwise.
    pub const DEFAULT: &'static str = "default";

    /// A class with the given label.
    pub fn new(label: impl Into<String>) -> Self {
        QueryClass(label.into())
    }

    /// The class label.
    pub fn label(&self) -> &str {
        &self.0
    }
}

impl Default for QueryClass {
    fn default() -> Self {
        QueryClass(QueryClass::DEFAULT.to_string())
    }
}

impl fmt::Display for QueryClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A community-search request as the serving layer sees it: the engine
/// query plus the caller's latency/priority/tenant intent.
///
/// ```
/// use csag::engine::{CommunityQuery, Method};
/// use csag::service::{Priority, Request};
/// use std::time::Duration;
///
/// let req = Request::new(CommunityQuery::new(Method::Sea, 7).with_k(3))
///     .with_priority(Priority::Interactive)
///     .with_deadline(Duration::from_millis(50))
///     .with_class("tenant-a");
/// assert_eq!(req.priority, Priority::Interactive);
/// ```
#[derive(Clone, Debug)]
pub struct Request {
    /// What to compute.
    pub query: CommunityQuery,
    /// Scheduling priority (default [`Priority::Standard`]).
    pub priority: Priority,
    /// Latency budget, measured from submission. A request that cannot
    /// run at full effort inside it is *degraded* to a cheaper (ε, δ)
    /// configuration (see [`CommunityQuery::fit_to_deadline`]) rather
    /// than timed out.
    pub deadline: Option<Duration>,
    /// Tenant/workload class for admission accounting.
    pub class: QueryClass,
    /// Epoch pin: the answer must come from store epoch `>=` this (wire
    /// key `"epoch"`). Routing waits a bounded time for the epoch to
    /// publish — the request's deadline if it has one, the service's
    /// `epoch_wait` otherwise — then rejects with the typed
    /// [`CsagError::EpochUnavailable`](crate::engine::CsagError).
    /// `None` (the default) reads from any current epoch.
    pub pin_epoch: Option<u64>,
}

impl Request {
    /// A standard-priority, deadline-free request in the default class.
    pub fn new(query: CommunityQuery) -> Self {
        Request {
            query,
            priority: Priority::Standard,
            deadline: None,
            class: QueryClass::default(),
            pin_epoch: None,
        }
    }

    /// Sets the scheduling priority.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the latency budget (measured from submission).
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the tenant/workload class.
    pub fn with_class(mut self, class: impl Into<String>) -> Self {
        self.class = QueryClass::new(class);
        self
    }

    /// Pins the read to store epoch `epoch` or later (see
    /// [`Request::pin_epoch`]).
    pub fn with_epoch(mut self, epoch: u64) -> Self {
        self.pin_epoch = Some(epoch);
        self
    }
}

/// The serving envelope around one answered request.
#[derive(Clone, Debug)]
pub struct Response {
    /// The id [`super::Service::submit`] assigned (echoed on the wire).
    pub request_id: u64,
    /// The store epoch the answering snapshot pinned.
    pub epoch: u64,
    /// The priority the request was admitted at.
    pub priority: Priority,
    /// The tenant/workload class it was accounted under.
    pub class: QueryClass,
    /// Whether this request rode on an identical in-flight computation
    /// instead of running its own (its `outcome` is then the *same*
    /// `Arc` every coalesced waiter got).
    pub coalesced: bool,
    /// Whether deadline pressure degraded the query to a cheaper
    /// configuration before it ran.
    pub degraded: bool,
    /// Time the request spent queued before a worker picked it up.
    pub queue_wait: Duration,
    /// Wall-clock margin left on the deadline when the answer was ready
    /// (negative: the deadline was missed by that much; `None`: no
    /// deadline was set).
    pub deadline_slack_ms: Option<f64>,
    /// Global completion sequence number (strictly increasing in the
    /// order computations finished; coalesced waiters share their
    /// computation's number).
    pub sequence: u64,
    /// The engine's answer, shared (not copied) between coalesced
    /// waiters, or the typed error the computation produced.
    pub outcome: Result<Arc<CommunityResult>, CsagError>,
}

/// A claim on a submitted request's [`Response`].
///
/// Admission already happened by the time a ticket exists — the request
/// is queued (or coalesced onto an in-flight computation) and *will* be
/// answered; [`Ticket::wait`] blocks until it is.
#[derive(Debug)]
pub struct Ticket {
    pub(crate) id: u64,
    pub(crate) rx: mpsc::Receiver<Response>,
}

impl Ticket {
    /// The request id the service assigned (matches
    /// [`Response::request_id`]).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the response arrives.
    ///
    /// # Panics
    /// If the service was torn down without answering — impossible
    /// through the public API ([`super::Service`]'s drop drains the
    /// queue before joining its workers).
    pub fn wait(self) -> Response {
        self.rx
            .recv()
            .expect("service answers every admitted request")
    }

    /// Returns the response if it is already available, or the ticket
    /// back if the computation is still in flight.
    pub fn try_wait(self) -> Result<Response, Ticket> {
        match self.rx.try_recv() {
            Ok(resp) => Ok(resp),
            Err(mpsc::TryRecvError::Empty) => Err(self),
            Err(mpsc::TryRecvError::Disconnected) => {
                panic!("service answers every admitted request")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Method;

    #[test]
    fn priority_names_round_trip_and_order() {
        for p in Priority::ALL {
            assert_eq!(p.name().parse::<Priority>().unwrap(), p);
        }
        assert!("urgent".parse::<Priority>().is_err());
        assert!(Priority::Interactive > Priority::Standard);
        assert!(Priority::Standard > Priority::Batch);
        assert_eq!(Priority::Batch.index(), 0);
        assert_eq!(Priority::Interactive.index(), 2);
    }

    #[test]
    fn request_builder_defaults() {
        let req = Request::new(CommunityQuery::new(Method::Sea, 1));
        assert_eq!(req.priority, Priority::Standard);
        assert!(req.deadline.is_none());
        assert_eq!(req.class.label(), "default");
        assert!(req.pin_epoch.is_none());
        let req = req
            .with_priority(Priority::Batch)
            .with_deadline(Duration::from_millis(10))
            .with_class("t")
            .with_epoch(3);
        assert_eq!(req.priority, Priority::Batch);
        assert_eq!(req.deadline, Some(Duration::from_millis(10)));
        assert_eq!(req.class.label(), "t");
        assert_eq!(req.pin_epoch, Some(3));
    }
}
