//! The socket transport: pipelined `csag-wire v2` over TCP and
//! unix-domain sockets.
//!
//! [`Transport`] binds a listener, accepts many concurrent connections,
//! and serves each one with two threads:
//!
//! * a **reader** that parses request lines and submits them to the
//!   [`Service`] *without waiting for answers* — consecutive lines that
//!   are already buffered are admitted as one batch
//!   ([`Service::submit_batch`] semantics: one scheduler lock, one
//!   worker wake-up for the whole burst);
//! * a **writer** that drains the connection's completion channel and
//!   emits one response line per answered request, **in completion
//!   order** — a client that pipelines K requests gets its K responses
//!   matched by `id`, not by position.
//!
//! That out-of-order, id-matched framing is the only semantic
//! difference between wire v2 (this module) and wire v1 (`csag serve`
//! on stdin/stdout, which answers strictly in request order). Request
//! grammar and response envelope are identical; the normative spec for
//! both lives in [`docs/wire-protocol.md`].
//!
//! Shutdown is graceful by construction: [`Transport::shutdown`] stops
//! accepting, half-closes every connection's read side, and then joins
//! the per-connection threads — which exit only after every in-flight
//! request has been answered and written out (the scheduler holds a
//! sender clone for each admitted waiter, so the writer's channel stays
//! open until the last response is delivered).
//!
//! ```no_run
//! use csag::datasets::paper_examples::figure1_imdb;
//! use csag::service::{Service, ServiceConfig, Transport};
//! use std::sync::Arc;
//!
//! let (graph, _) = figure1_imdb();
//! let service = Arc::new(Service::over_graph(graph, ServiceConfig::default()));
//! let transport = Transport::bind_tcp(Arc::clone(&service), "127.0.0.1:0").unwrap();
//! println!("listening on {}", transport.local_addr());
//! // ... clients connect, pipeline requests, read responses by id ...
//! transport.shutdown(); // drains in-flight work, then joins
//! ```
//!
//! [`docs/wire-protocol.md`]: https://github.com/csag/csag/blob/main/docs/wire-protocol.md

use crate::durability::FaultPlan;
use crate::engine::CsagError;
use crate::service::request::{Request, Response};
use crate::service::wire::{parse_wire_request, rejection_to_json, response_to_json};
use crate::service::Service;
use std::fmt;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::thread::JoinHandle;

/// Reader-side cap on how many parsed requests are submitted to the
/// scheduler as one batch. Bounds per-batch latency (the first request
/// of a flood starts executing after at most this many parses) without
/// giving up wake amortization.
const MAX_SUBMIT_BATCH: usize = 128;

/// One message on a connection's completion channel, rendered to a
/// response line by the connection's writer thread.
pub(crate) enum Outgoing {
    /// A completed service response for the request whose wire id token
    /// is `id`.
    Done {
        /// The client-assigned id, echoed verbatim.
        id: Arc<str>,
        /// The serving envelope around the engine's answer.
        response: Response,
    },
    /// A request that never reached a worker: malformed, rejected at
    /// validation, or shed by admission.
    Reject {
        /// The id token to echo (the line number for unparseable lines).
        id: Arc<str>,
        /// The typed error to render.
        error: CsagError,
    },
}

impl Outgoing {
    fn render(&self) -> String {
        match self {
            Outgoing::Done { id, response } => response_to_json(id, response),
            Outgoing::Reject { id, error } => rejection_to_json(id, error),
        }
    }
}

/// The address a [`Transport`] is bound to.
#[derive(Clone, Debug)]
pub enum BoundAddr {
    /// A TCP listener (use [`BoundAddr::tcp`] to recover the
    /// possibly-ephemeral port).
    Tcp(SocketAddr),
    /// A unix-domain socket path.
    #[cfg(unix)]
    Unix(PathBuf),
}

impl BoundAddr {
    /// The TCP socket address, if this is a TCP binding.
    pub fn tcp(&self) -> Option<SocketAddr> {
        match self {
            BoundAddr::Tcp(a) => Some(*a),
            #[cfg(unix)]
            BoundAddr::Unix(_) => None,
        }
    }
}

impl fmt::Display for BoundAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoundAddr::Tcp(a) => write!(f, "tcp://{a}"),
            #[cfg(unix)]
            BoundAddr::Unix(p) => write!(f, "unix://{}", p.display()),
        }
    }
}

/// The stream operations the connection loop needs, implemented by both
/// [`TcpStream`] and [`UnixStream`]: splitting into a read and a write
/// half, and half-closing the read side (the graceful-shutdown signal —
/// the blocked reader sees EOF, in-flight responses still flow out).
pub(crate) trait WireSocket: Read + Write + Send + Sized + 'static {
    fn split_off_writer(&self) -> io::Result<Self>;
    fn close_read(&self) -> io::Result<()>;
    /// Severs both directions at once — the injected-fault "connection
    /// drop": the client sees a reset mid-pipeline, nothing is drained.
    fn abort(&self) -> io::Result<()>;
}

impl WireSocket for TcpStream {
    fn split_off_writer(&self) -> io::Result<Self> {
        self.try_clone()
    }
    fn close_read(&self) -> io::Result<()> {
        self.shutdown(Shutdown::Read)
    }
    fn abort(&self) -> io::Result<()> {
        self.shutdown(Shutdown::Both)
    }
}

#[cfg(unix)]
impl WireSocket for UnixStream {
    fn split_off_writer(&self) -> io::Result<Self> {
        self.try_clone()
    }
    fn close_read(&self) -> io::Result<()> {
        self.shutdown(Shutdown::Read)
    }
    fn abort(&self) -> io::Result<()> {
        self.shutdown(Shutdown::Both)
    }
}

/// A listener the accept loop can run on (TCP or unix-domain).
pub(crate) trait WireListener: Send + 'static {
    type Stream: WireSocket;
    fn accept_stream(&self) -> io::Result<Self::Stream>;
}

impl WireListener for TcpListener {
    type Stream = TcpStream;
    fn accept_stream(&self) -> io::Result<TcpStream> {
        let (s, _) = self.accept()?;
        // Responses are small writes issued while earlier ones may still
        // be unacknowledged; without TCP_NODELAY, Nagle holds them back
        // for the delayed ACK and pipelined throughput collapses.
        s.set_nodelay(true)?;
        Ok(s)
    }
}

#[cfg(unix)]
impl WireListener for UnixListener {
    type Stream = UnixStream;
    fn accept_stream(&self) -> io::Result<UnixStream> {
        self.accept().map(|(s, _)| s)
    }
}

/// One live connection: the handle to join and a hook that half-closes
/// its read side so the reader unblocks during shutdown.
struct Conn {
    closer: Box<dyn Fn() + Send>,
    handle: JoinHandle<()>,
}

/// State shared between the accept loop, the connections, and the
/// [`Transport`] handle.
struct TransportShared {
    service: Arc<Service>,
    shutdown: AtomicBool,
    conns: Mutex<Vec<Conn>>,
    accepted: AtomicU64,
    /// Deterministic fault script ([`FaultPlan::none`] in production):
    /// connection drops are indexed by requests parsed across all
    /// connections of this transport.
    faults: FaultPlan,
}

impl TransportShared {
    fn conns(&self) -> std::sync::MutexGuard<'_, Vec<Conn>> {
        self.conns.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Registers and serves one accepted connection; also reaps
    /// already-finished connection threads so the registry does not
    /// grow with connection churn.
    fn spawn_conn<S: WireSocket>(self: &Arc<Self>, stream: S) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
        let closer: Box<dyn Fn() + Send> = match stream.split_off_writer() {
            Ok(half) => Box::new(move || {
                let _ = half.close_read();
            }),
            // No way to signal this connection during shutdown; it will
            // still drain when the client closes. Serve it anyway.
            Err(_) => Box::new(|| {}),
        };
        let service = Arc::clone(&self.service);
        let faults = self.faults.clone();
        let spawned = std::thread::Builder::new()
            .name("csag-wire-conn".into())
            .spawn(move || connection_loop(&service, stream, &faults));
        let Ok(handle) = spawned else { return };
        let mut conns = self.conns();
        let mut i = 0;
        while i < conns.len() {
            if conns[i].handle.is_finished() {
                let done = conns.swap_remove(i);
                let _ = done.handle.join();
            } else {
                i += 1;
            }
        }
        conns.push(Conn { closer, handle });
    }

    fn accept_loop<L: WireListener>(self: &Arc<Self>, listener: L) {
        loop {
            match listener.accept_stream() {
                Ok(stream) => {
                    if self.shutdown.load(Ordering::Acquire) {
                        // The shutdown wake-up connection (or a client
                        // racing it): stop accepting.
                        break;
                    }
                    self.spawn_conn(stream);
                }
                Err(_) => {
                    if self.shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    // Transient accept error (EMFILE, aborted handshake):
                    // keep serving.
                }
            }
        }
    }
}

/// A listening `csag-wire v2` endpoint over a shared [`Service`].
///
/// Bind with [`Transport::bind_tcp`] or [`Transport::bind_uds`]; every
/// accepted connection gets the full pipelined treatment described in
/// the [module docs](self). The transport keeps the service alive
/// (`Arc`) but does not own it exclusively — in-process callers keep
/// using [`Service::submit`] concurrently, and several transports (TCP
/// and UDS, say) can front one service.
pub struct Transport {
    shared: Arc<TransportShared>,
    accept: Option<JoinHandle<()>>,
    addr: BoundAddr,
}

impl Transport {
    /// Binds a TCP listener (use port 0 for an ephemeral port, then
    /// read it back from [`Transport::local_addr`]) and starts the
    /// accept loop.
    ///
    /// # Errors
    /// Any [`io::Error`] from binding or inspecting the listener.
    pub fn bind_tcp(service: Arc<Service>, addr: impl ToSocketAddrs) -> io::Result<Transport> {
        Transport::bind_tcp_with(service, addr, FaultPlan::none())
    }

    /// [`Transport::bind_tcp`] with a fault script: requests parsed
    /// across this transport's connections are counted, and a scripted
    /// index ([`FaultPlan::drop_connection_at_request`]) severs that
    /// request's connection abruptly — both directions, nothing
    /// drained — exactly as if the peer or network had died.
    ///
    /// # Errors
    /// Any [`io::Error`] from binding or inspecting the listener.
    pub fn bind_tcp_with(
        service: Arc<Service>,
        addr: impl ToSocketAddrs,
        faults: FaultPlan,
    ) -> io::Result<Transport> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        Transport::start(service, listener, BoundAddr::Tcp(local), faults)
    }

    /// Binds a unix-domain socket listener and starts the accept loop.
    ///
    /// A socket file already at `path` is probed first: if a server
    /// still answers on it, binding fails with
    /// [`io::ErrorKind::AddrInUse`] instead of silently stealing the
    /// path; if nothing answers (a previous process crashed without
    /// unlinking), the stale file is removed and the bind proceeds.
    /// The file is removed again on shutdown.
    ///
    /// # Errors
    /// [`io::ErrorKind::AddrInUse`] when a live server already serves
    /// `path`; otherwise any [`io::Error`] from binding the listener.
    #[cfg(unix)]
    pub fn bind_uds(service: Arc<Service>, path: impl AsRef<Path>) -> io::Result<Transport> {
        Transport::bind_uds_with(service, path, FaultPlan::none())
    }

    /// [`Transport::bind_uds`] with a fault script (see
    /// [`Transport::bind_tcp_with`]).
    ///
    /// # Errors
    /// Same as [`Transport::bind_uds`].
    #[cfg(unix)]
    pub fn bind_uds_with(
        service: Arc<Service>,
        path: impl AsRef<Path>,
        faults: FaultPlan,
    ) -> io::Result<Transport> {
        let path = path.as_ref().to_path_buf();
        reclaim_stale_uds(&path)?;
        let listener = UnixListener::bind(&path)?;
        Transport::start(service, listener, BoundAddr::Unix(path), faults)
    }

    fn start<L: WireListener>(
        service: Arc<Service>,
        listener: L,
        addr: BoundAddr,
        faults: FaultPlan,
    ) -> io::Result<Transport> {
        let shared = Arc::new(TransportShared {
            service,
            shutdown: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
            accepted: AtomicU64::new(0),
            faults,
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("csag-wire-accept".into())
            .spawn(move || accept_shared.accept_loop(listener))?;
        Ok(Transport {
            shared,
            accept: Some(accept),
            addr,
        })
    }

    /// The address this transport is bound to (with the real port when
    /// bound to port 0).
    pub fn local_addr(&self) -> &BoundAddr {
        &self.addr
    }

    /// Total connections accepted so far.
    pub fn connections_accepted(&self) -> u64 {
        self.shared.accepted.load(Ordering::Relaxed)
    }

    /// Currently-registered connections (finished ones are reaped
    /// lazily on the next accept, so this is an upper bound on live
    /// connections).
    pub fn open_connections(&self) -> usize {
        self.shared.conns().len()
    }

    /// Graceful shutdown: stop accepting, half-close every connection's
    /// read side, and join the per-connection threads. Requests already
    /// admitted keep their workers; this call returns only after every
    /// in-flight response has been written to its connection.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        // Unblock the accept loop with a wake-up connection; if that
        // fails (listener already broken) the loop is unblocked anyway.
        match &self.addr {
            BoundAddr::Tcp(a) => {
                let _ = TcpStream::connect(a);
            }
            #[cfg(unix)]
            BoundAddr::Unix(p) => {
                let _ = UnixStream::connect(p);
            }
        }
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let conns = std::mem::take(&mut *self.shared.conns());
        for c in &conns {
            (c.closer)();
        }
        for c in conns {
            let _ = c.handle.join();
        }
        #[cfg(unix)]
        if let BoundAddr::Unix(p) = &self.addr {
            let _ = std::fs::remove_file(p);
        }
    }
}

impl Drop for Transport {
    /// Same as [`Transport::shutdown`] — dropping the handle drains
    /// in-flight work before the listener goes away.
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Probes a possibly-stale unix socket file before binding over it: a
/// live server answering on `path` is an [`io::ErrorKind::AddrInUse`]
/// error; a dead socket file (previous process crashed without
/// unlinking) is removed so the caller's bind proceeds. Shared by the
/// query transport and the replication listener.
#[cfg(unix)]
pub(crate) fn reclaim_stale_uds(path: &Path) -> io::Result<()> {
    if path.exists() {
        match UnixStream::connect(path) {
            Ok(_) => {
                return Err(io::Error::new(
                    io::ErrorKind::AddrInUse,
                    format!("{} is already served by a live process", path.display()),
                ));
            }
            // Connection refused: the socket file outlived its server
            // (crash without unlink). Reclaim it.
            Err(_) => std::fs::remove_file(path)?,
        }
    }
    Ok(())
}

/// The per-connection reader: parse lines, batch every burst of
/// already-buffered requests into one scheduler submission, and never
/// wait for an answer. Ends at EOF (client closed, or shutdown
/// half-closed the read side); the writer is then joined, which
/// finishes only after the scheduler has answered every in-flight
/// request submitted here.
fn connection_loop<S: WireSocket>(service: &Arc<Service>, stream: S, faults: &FaultPlan) {
    let Ok(write_half) = stream.split_off_writer() else {
        return;
    };
    let (tx, rx) = mpsc::channel::<Outgoing>();
    let spawned = std::thread::Builder::new()
        .name("csag-wire-writer".into())
        .spawn(move || writer_loop(&rx, write_half));
    let Ok(writer) = spawned else { return };

    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut batch: Vec<(Arc<str>, Request)> = Vec::new();
    let mut line_no = 0usize;
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        if !line.trim().is_empty() {
            if faults.next_request_drops() {
                // Scripted connection drop: sever both directions right
                // now — this request and everything pipelined behind it
                // (answered or not) is lost, exactly like a real reset.
                let _ = reader.get_ref().abort();
                drop(tx);
                let _ = writer.join();
                return;
            }
            match parse_wire_request(&line, line_no) {
                Err(msg) => {
                    let _ = tx.send(Outgoing::Reject {
                        id: Arc::from(line_no.to_string().as_str()),
                        error: CsagError::invalid(msg),
                    });
                }
                Ok(wire) => batch.push((Arc::from(wire.id.as_str()), wire.request)),
            }
        }
        line_no += 1;
        // Batch boundary: submit once nothing more is already buffered
        // (an idle client costs no latency; a pipelining client gets
        // its whole burst admitted under one lock and one wake).
        if !batch.is_empty()
            && (batch.len() >= MAX_SUBMIT_BATCH || !reader.buffer().contains(&b'\n'))
        {
            service.submit_wire_batch(std::mem::take(&mut batch), &tx);
        }
    }
    if !batch.is_empty() {
        service.submit_wire_batch(batch, &tx);
    }
    // Drop our sender; the scheduler holds one clone per in-flight
    // waiter, so the writer drains exactly the outstanding responses
    // and then exits.
    drop(tx);
    let _ = writer.join();
}

/// The per-connection writer: render completion-channel messages as
/// response lines in arrival (= completion) order, flushing once per
/// drained burst rather than once per line.
fn writer_loop<S: Write>(rx: &mpsc::Receiver<Outgoing>, stream: S) {
    let mut out = BufWriter::new(stream);
    while let Ok(first) = rx.recv() {
        let mut msg = first;
        loop {
            if writeln!(out, "{}", msg.render()).is_err() {
                // Client went away; responses are dropped on the floor
                // (the computations and metrics still counted).
                return;
            }
            match rx.try_recv() {
                Ok(next) => msg = next,
                Err(_) => break,
            }
        }
        if out.flush().is_err() {
            return;
        }
    }
}
