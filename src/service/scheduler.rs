//! The worker-pool scheduler: a priority queue of *jobs* (one job per
//! distinct in-flight computation), coalescing of identical queries,
//! deadline-aware budget derivation at dispatch time, and fan-out of
//! one shared `Arc<CommunityResult>` to every waiter.
//!
//! Locking discipline: all scheduler state lives behind one mutex
//! (`Shared::state`); the critical sections are map/heap operations
//! only. Query execution — the expensive part — always happens outside
//! the lock, on a worker's private [`QueryWorkspace`].

use crate::cluster::{ReadSource, RoutedSnapshot};
use crate::engine::{CommunityQuery, CsagError};
use crate::service::admission::Admission;
use crate::service::metrics::ServiceMetrics;
use crate::service::request::{Priority, QueryClass, Request, Response, Ticket};
use crate::service::transport::Outgoing;
use csag_graph::QueryWorkspace;
use std::cmp::Ordering as CmpOrdering;
use std::collections::{BinaryHeap, HashMap};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Where one admitted waiter's [`Response`] is delivered.
pub(crate) enum ReplyTo {
    /// An in-process caller blocked on a [`Ticket`].
    Ticket(mpsc::Sender<Response>),
    /// A transport connection's completion channel; `id` is the
    /// client-assigned wire id token, carried along so the connection's
    /// writer can emit the response line out of order.
    Connection {
        tx: mpsc::Sender<Outgoing>,
        id: Arc<str>,
    },
}

impl ReplyTo {
    /// Delivers the response. A dropped receiver (caller gave up, or
    /// the connection closed) just means nobody is listening; the
    /// computation and its metrics still counted.
    fn deliver(self, response: Response) {
        match self {
            ReplyTo::Ticket(tx) => {
                let _ = tx.send(response);
            }
            ReplyTo::Connection { tx, id } => {
                let _ = tx.send(Outgoing::Done { id, response });
            }
        }
    }
}

/// One admitted request waiting on a job's outcome.
struct Waiter {
    request_id: u64,
    priority: Priority,
    class: QueryClass,
    submitted: Instant,
    deadline_at: Option<Instant>,
    coalesced: bool,
    reply: ReplyTo,
}

/// One distinct in-flight computation and everyone waiting on it.
struct Job {
    query: CommunityQuery,
    /// The routed read the job answers from: pins both the snapshot
    /// and (for replica reads) the replica's load-accounting lease.
    routed: RoutedSnapshot,
    key: String,
    /// Highest priority among the job's waiters (coalescing escalates).
    priority: Priority,
    running: bool,
    waiters: Vec<Waiter>,
}

/// A heap entry pointing at a queued job. Orders by priority first,
/// then FIFO by arrival within a priority. Entries can go stale (job
/// escalated, started, or finished); the pop loop discards those.
#[derive(PartialEq, Eq)]
struct ReadyEntry {
    priority: Priority,
    arrival: u64,
    job_id: u64,
}

impl Ord for ReadyEntry {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        self.priority
            .cmp(&other.priority)
            .then(other.arrival.cmp(&self.arrival))
    }
}

impl PartialOrd for ReadyEntry {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}

/// Mutex-guarded scheduler state.
pub(crate) struct SchedState {
    admission: Admission,
    jobs: HashMap<u64, Job>,
    /// Coalescing index: query fingerprint (epoch included) → job id,
    /// for every queued *or running* job.
    by_key: HashMap<String, u64>,
    ready: BinaryHeap<ReadyEntry>,
    next_job_id: u64,
    next_request_id: u64,
    next_arrival: u64,
    paused: bool,
    shutdown: bool,
}

/// State shared between the submit path and the worker pool.
pub(crate) struct Shared {
    state: Mutex<SchedState>,
    work: Condvar,
    pub(crate) metrics: ServiceMetrics,
    /// Wall-time under which deadline-driven degradation kicks in.
    full_effort: Duration,
    /// How long an epoch-pinned read without a deadline may wait for
    /// its epoch to publish before the typed rejection.
    epoch_wait: Duration,
    /// Global completion sequence (coalesced waiters share a number).
    finish_seq: AtomicU64,
}

impl Shared {
    pub(crate) fn new(
        capacity: usize,
        per_class_capacity: Option<usize>,
        workers: usize,
        full_effort: Duration,
        epoch_wait: Duration,
        start_paused: bool,
    ) -> Self {
        Shared {
            state: Mutex::new(SchedState {
                admission: Admission::new(capacity, per_class_capacity, workers),
                jobs: HashMap::new(),
                by_key: HashMap::new(),
                ready: BinaryHeap::new(),
                next_job_id: 0,
                next_request_id: 0,
                next_arrival: 0,
                paused: start_paused,
                shutdown: false,
            }),
            work: Condvar::new(),
            metrics: ServiceMetrics::default(),
            full_effort,
            epoch_wait,
            finish_seq: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SchedState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Admits or sheds one request. On admission the request either
    /// becomes a new queued job or coalesces onto the identical
    /// in-flight one.
    pub(crate) fn submit(
        &self,
        source: &dyn ReadSource,
        req: Request,
    ) -> Result<Ticket, CsagError> {
        let (tx, rx) = mpsc::channel();
        let mut outcomes = self.submit_many(source, vec![(req, ReplyTo::Ticket(tx))]);
        outcomes
            .pop()
            .expect("one entry in, one outcome out")
            .map(|id| Ticket { id, rx })
    }

    /// Batched admission, the pipelined-transport fast path: every
    /// entry is validated, admitted-or-shed, and queued/coalesced under
    /// **one** lock acquisition, and at most **one** worker wake-up is
    /// issued for the whole batch (`notify_one` when a single job was
    /// queued, `notify_all` otherwise) — a connection submitting N
    /// requests back-to-back costs one scheduler wake, not N.
    ///
    /// Outcomes are positionally aligned with `entries`: `Ok(request
    /// id)` for admitted entries (the reply sink will receive exactly
    /// one [`Response`]), `Err` for entries rejected before admission
    /// or shed by it (the reply sink will receive nothing — the caller
    /// owns the rejection).
    ///
    /// Unpinned entries share **one** routed snapshot: entries that
    /// arrived together answer from the same epoch. Epoch-pinned
    /// entries route individually (their pin may demand a newer epoch,
    /// or a bounded wait for one); a pin no store satisfies in time is
    /// rejected pre-admission with the typed `EpochUnavailable`.
    pub(crate) fn submit_many(
        &self,
        source: &dyn ReadSource,
        entries: Vec<(Request, ReplyTo)>,
    ) -> Vec<Result<u64, CsagError>> {
        // Pre-lock, per entry: counting, validation, routing,
        // fingerprinting. Degenerate queries are a caller bug, not
        // load: reject before admission so they never occupy a queue
        // slot (counted as `rejected`, so submitted == admitted + shed
        // + rejected always balances). That includes the one method the
        // homogeneous engine can never answer — admitting it would burn
        // a slot and a dispatch on a guaranteed InvalidParams — and
        // unroutable epoch pins.
        let mut batch_route: Option<RoutedSnapshot> = None;
        let mut outcomes: Vec<Option<Result<u64, CsagError>>> = Vec::with_capacity(entries.len());
        let mut admissible: Vec<(usize, Request, ReplyTo, String, RoutedSnapshot)> =
            Vec::with_capacity(entries.len());
        for (req, reply) in entries {
            self.metrics.submitted.fetch_add(1, Ordering::Relaxed);
            if let Err(e) = req.query.validate() {
                self.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                outcomes.push(Some(Err(e)));
                continue;
            }
            if req.query.method == crate::engine::Method::SeaHetero {
                self.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                outcomes.push(Some(Err(CsagError::invalid(
                    "method sea-hetero needs the original heterogeneous graph; \
                     the service fronts a homogeneous GraphStore — run it through HeteroEngine",
                ))));
                continue;
            }
            let routed = match req.pin_epoch {
                None => {
                    if batch_route.is_none() {
                        match source.route_read(None, Duration::ZERO) {
                            Ok(r) => batch_route = Some(r),
                            Err(e) => {
                                self.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                                outcomes.push(Some(Err(e)));
                                continue;
                            }
                        }
                    }
                    batch_route.clone().expect("just routed")
                }
                Some(epoch) => {
                    let wait = req.deadline.unwrap_or(self.epoch_wait);
                    match source.route_read(Some(epoch), wait) {
                        Ok(r) => r,
                        Err(e) => {
                            self.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                            outcomes.push(Some(Err(e)));
                            continue;
                        }
                    }
                }
            };
            let key = fingerprint(&req.query, routed.epoch(), req.deadline.is_some());
            admissible.push((outcomes.len(), req, reply, key, routed));
            outcomes.push(None);
        }

        let mut newly_ready = 0usize;
        let mut st = self.lock();
        for (ix, req, reply, key, routed) in admissible {
            if st.shutdown {
                self.metrics.shed.fetch_add(1, Ordering::Relaxed);
                outcomes[ix] = Some(Err(CsagError::Overloaded {
                    retry_after: Duration::from_millis(1),
                }));
                continue;
            }
            if let Err(e) = st.admission.try_admit(&req.class) {
                self.metrics.shed.fetch_add(1, Ordering::Relaxed);
                outcomes[ix] = Some(Err(e));
                continue;
            }
            let request_id = st.next_request_id;
            st.next_request_id += 1;
            let now = Instant::now();
            let mut waiter = Waiter {
                request_id,
                priority: req.priority,
                class: req.class,
                submitted: now,
                deadline_at: req.deadline.map(|d| now + d),
                coalesced: false,
                reply,
            };
            match st.by_key.get(&key).copied() {
                Some(job_id) => {
                    // Identical query already queued or running: ride it.
                    waiter.coalesced = true;
                    self.metrics.coalesced.fetch_add(1, Ordering::Relaxed);
                    let escalate = {
                        let job = st.jobs.get_mut(&job_id).expect("indexed job exists");
                        job.waiters.push(waiter);
                        if req.priority > job.priority {
                            job.priority = req.priority;
                            !job.running
                        } else {
                            false
                        }
                    };
                    if escalate {
                        // Requeue at the higher priority; the old entry
                        // goes stale and is discarded on pop.
                        let arrival = st.next_arrival;
                        st.next_arrival += 1;
                        st.ready.push(ReadyEntry {
                            priority: req.priority,
                            arrival,
                            job_id,
                        });
                        newly_ready += 1;
                    }
                }
                None => {
                    let job_id = st.next_job_id;
                    st.next_job_id += 1;
                    st.jobs.insert(
                        job_id,
                        Job {
                            query: req.query,
                            routed,
                            key: key.clone(),
                            priority: req.priority,
                            running: false,
                            waiters: vec![waiter],
                        },
                    );
                    st.by_key.insert(key, job_id);
                    let arrival = st.next_arrival;
                    st.next_arrival += 1;
                    st.ready.push(ReadyEntry {
                        priority: req.priority,
                        arrival,
                        job_id,
                    });
                    newly_ready += 1;
                }
            }
            self.metrics.admitted.fetch_add(1, Ordering::Relaxed);
            outcomes[ix] = Some(Ok(request_id));
        }
        // Wake amortization: one notification for the whole batch.
        match newly_ready {
            0 => {}
            1 => {
                self.work.notify_one();
                self.metrics.wakes.fetch_add(1, Ordering::Relaxed);
            }
            _ => {
                self.work.notify_all();
                self.metrics.wakes.fetch_add(1, Ordering::Relaxed);
            }
        }
        drop(st);
        outcomes
            .into_iter()
            .map(|o| o.expect("every entry resolved"))
            .collect()
    }

    /// Stops dequeuing (already-running computations finish).
    pub(crate) fn pause(&self) {
        self.lock().paused = true;
    }

    /// Resumes dequeuing.
    pub(crate) fn resume(&self) {
        self.lock().paused = false;
        self.work.notify_all();
    }

    /// Admitted-but-unanswered request count (a load probe).
    pub(crate) fn pending(&self) -> usize {
        self.lock().admission.pending()
    }

    /// Marks the service down and wakes every worker so the queue
    /// drains and the pool exits.
    pub(crate) fn begin_shutdown(&self) {
        self.lock().shutdown = true;
        self.work.notify_all();
    }

    /// The worker loop: pick the highest-priority queued job, derive a
    /// deadline-fitted query, run it on this worker's private
    /// workspace, and fan the shared outcome out to every waiter.
    pub(crate) fn worker_loop(self: &Arc<Self>) {
        let mut ws = QueryWorkspace::new();
        loop {
            // Pick a job (or exit once shut down and drained).
            let (job_id, query, routed, earliest_deadline) = {
                let mut st = self.lock();
                let picked = loop {
                    if st.shutdown && st.ready.is_empty() {
                        return;
                    }
                    // A paused scheduler holds work back — except during
                    // shutdown, when draining takes precedence.
                    if !st.paused || st.shutdown {
                        let mut picked = None;
                        while let Some(entry) = st.ready.pop() {
                            if let Some(job) = st.jobs.get_mut(&entry.job_id) {
                                if !job.running {
                                    job.running = true;
                                    picked = Some(entry.job_id);
                                    break;
                                }
                            }
                            // Stale entry (job finished or already
                            // running, or this was a pre-escalation
                            // duplicate): discard.
                        }
                        if let Some(id) = picked {
                            break id;
                        }
                        if st.shutdown && st.ready.is_empty() {
                            return;
                        }
                    }
                    st = self.work.wait(st).unwrap_or_else(PoisonError::into_inner);
                };
                let job = &st.jobs[&picked];
                (
                    picked,
                    job.query.clone(),
                    job.routed.clone(),
                    job.waiters.iter().filter_map(|w| w.deadline_at).min(),
                )
            };

            // Deadline-aware budget derivation: the remaining wall time
            // (of the *tightest* waiter) maps onto SEA round/sample
            // budgets or exact state budgets, so a late request degrades
            // to a cheaper (ε, δ) answer instead of timing out.
            let dispatched = Instant::now();
            let (derived, degraded) = match earliest_deadline {
                Some(at) => query
                    .fit_to_deadline(at.saturating_duration_since(dispatched), self.full_effort),
                None => (query, false),
            };

            // Execute outside the lock, on this worker's workspace. A
            // panicking query must not wedge the job (its waiters would
            // block forever and every later identical submission would
            // coalesce onto the corpse): catch the unwind, answer the
            // waiters with a typed error, and retire the worker's
            // workspace (its pooled state may be mid-mutation).
            let warm = routed.warm_hit(derived.q, derived.gamma);
            let t = Instant::now();
            let outcome = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                routed.run_with_workspace(&derived, &mut ws)
            })) {
                Ok(outcome) => outcome.map(Arc::new),
                Err(panic) => {
                    ws = QueryWorkspace::new();
                    let what = panic
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| panic.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".to_string());
                    Err(CsagError::invalid(format!(
                        "internal: query execution panicked ({what}); this is a csag bug"
                    )))
                }
            };
            let service_ms = t.elapsed().as_secs_f64() * 1e3;
            self.metrics.executed.fetch_add(1, Ordering::Relaxed);
            if warm {
                self.metrics.warm_hits.fetch_add(1, Ordering::Relaxed);
            }
            let sequence = self.finish_seq.fetch_add(1, Ordering::Relaxed) + 1;

            // Retire the job under the lock; fan out after releasing it.
            let waiters = {
                let mut st = self.lock();
                let job = st.jobs.remove(&job_id).expect("running job exists");
                if st.by_key.get(&job.key) == Some(&job_id) {
                    st.by_key.remove(&job.key);
                }
                st.admission.observe_service_ms(service_ms);
                for w in &job.waiters {
                    st.admission.release(&w.class);
                }
                job.waiters
            };
            let epoch = routed.epoch();
            let done = Instant::now();
            for w in waiters {
                self.metrics.completed.fetch_add(1, Ordering::Relaxed);
                if outcome.is_err() {
                    self.metrics.failed.fetch_add(1, Ordering::Relaxed);
                }
                if degraded {
                    self.metrics.degraded.fetch_add(1, Ordering::Relaxed);
                }
                let latency_ms = done.saturating_duration_since(w.submitted).as_secs_f64() * 1e3;
                self.metrics.record_latency(w.priority, latency_ms);
                let deadline_slack_ms = w.deadline_at.map(|at| {
                    if done <= at {
                        at.duration_since(done).as_secs_f64() * 1e3
                    } else {
                        -(done.duration_since(at).as_secs_f64() * 1e3)
                    }
                });
                let queue_wait = dispatched.saturating_duration_since(w.submitted);
                let Waiter {
                    request_id,
                    priority,
                    class,
                    coalesced,
                    reply,
                    ..
                } = w;
                reply.deliver(Response {
                    request_id,
                    epoch,
                    priority,
                    class,
                    coalesced,
                    degraded,
                    queue_wait,
                    deadline_slack_ms,
                    sequence,
                    outcome: outcome.clone(),
                });
            }
        }
    }
}

/// A stable identity for "the same computation": every knob that can
/// change the answer, plus the epoch the pinned snapshot serves —
/// queries against different graph versions must never coalesce —
/// plus whether the request carries a deadline at all: a deadline-free
/// request asked for full effort and must never ride a potentially
/// degraded computation (deadlined requests coalesce with each other;
/// the tightest deadline governs). Floats contribute their exact bit
/// patterns.
fn fingerprint(q: &CommunityQuery, epoch: u64, deadlined: bool) -> String {
    let mut s = String::with_capacity(128);
    let _ = write!(
        s,
        "{epoch}|{deadlined}|{}|{}|{}|{}|{:x}|{:x}|{:x}|{:x}|{:x}|{:x}|{:?}|{}|{:?}|{}|{:?}|{:?}|{:?}|{:?}|{}",
        q.method.name(),
        q.q,
        q.k,
        q.model,
        q.gamma.to_bits(),
        q.error_bound.to_bits(),
        q.confidence.to_bits(),
        q.hoeffding_epsilon.to_bits(),
        q.hoeffding_confidence.to_bits(),
        q.lambda.to_bits(),
        q.size_bound,
        q.seed,
        q.pruning,
        q.warm_start,
        q.state_budget,
        q.time_budget,
        q.vac_iteration_cap,
        q.evac_max_root,
        q.max_rounds,
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Method;

    #[test]
    fn fingerprint_separates_what_matters() {
        let base = CommunityQuery::new(Method::Sea, 3).with_k(4);
        let same = CommunityQuery::new(Method::Sea, 3).with_k(4);
        assert_eq!(fingerprint(&base, 0, false), fingerprint(&same, 0, false));
        // Different epoch, node, seed, accuracy knob, or deadline
        // presence ⇒ different job.
        assert_ne!(fingerprint(&base, 0, false), fingerprint(&base, 1, false));
        assert_ne!(
            fingerprint(&base, 0, false),
            fingerprint(&base, 0, true),
            "full-effort requests never ride a possibly degraded job"
        );
        assert_ne!(
            fingerprint(&base, 0, false),
            fingerprint(&base.clone().with_query(4), 0, false)
        );
        assert_ne!(
            fingerprint(&base, 0, false),
            fingerprint(&base.clone().with_seed(7), 0, false)
        );
        assert_ne!(
            fingerprint(&base, 0, false),
            fingerprint(&base.clone().with_error_bound(0.1), 0, false)
        );
        assert_ne!(
            fingerprint(&base, 0, false),
            fingerprint(&base.clone().with_method(Method::Exact), 0, false)
        );
    }

    #[test]
    fn ready_entries_order_by_priority_then_fifo() {
        let mut heap = BinaryHeap::new();
        heap.push(ReadyEntry {
            priority: Priority::Standard,
            arrival: 0,
            job_id: 10,
        });
        heap.push(ReadyEntry {
            priority: Priority::Interactive,
            arrival: 2,
            job_id: 11,
        });
        heap.push(ReadyEntry {
            priority: Priority::Standard,
            arrival: 1,
            job_id: 12,
        });
        heap.push(ReadyEntry {
            priority: Priority::Batch,
            arrival: 3,
            job_id: 13,
        });
        let order: Vec<u64> = std::iter::from_fn(|| heap.pop().map(|e| e.job_id)).collect();
        assert_eq!(order, vec![11, 10, 12, 13]);
    }
}
