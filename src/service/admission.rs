//! Bounded admission control: every request is either *admitted* (it
//! will be answered) or *shed immediately* with
//! [`CsagError::Overloaded`] — the queue never grows without bound.
//!
//! The controller tracks admitted-but-unanswered requests globally and
//! per [`QueryClass`]; the `retry_after` hint it attaches to sheds is
//! derived from the observed per-computation service time (an EWMA) and
//! the current backlog, so well-behaved clients back off for roughly
//! one queue-drain interval instead of hammering a hot service.

use crate::engine::CsagError;
use crate::service::request::QueryClass;
use std::collections::HashMap;
use std::time::Duration;

/// Floor/ceiling for the `retry_after` hint.
const MIN_RETRY_AFTER: Duration = Duration::from_millis(1);
const MAX_RETRY_AFTER: Duration = Duration::from_secs(5);

/// Seed for the service-time EWMA before anything has completed.
const INITIAL_SERVICE_MS: f64 = 2.0;

/// The admission state (guarded by the scheduler's mutex).
pub(crate) struct Admission {
    /// Global bound on admitted-but-unanswered requests.
    capacity: usize,
    /// Optional per-class bound (tenant isolation).
    per_class_capacity: Option<usize>,
    /// Worker count, for the drain-time estimate.
    workers: usize,
    /// Admitted-but-unanswered requests, total and per class.
    pending: usize,
    per_class_pending: HashMap<String, usize>,
    /// EWMA of per-computation service time, in milliseconds.
    ewma_service_ms: f64,
}

impl Admission {
    pub(crate) fn new(capacity: usize, per_class_capacity: Option<usize>, workers: usize) -> Self {
        Admission {
            capacity: capacity.max(1),
            per_class_capacity,
            workers: workers.max(1),
            pending: 0,
            per_class_pending: HashMap::new(),
            ewma_service_ms: INITIAL_SERVICE_MS,
        }
    }

    /// Currently admitted-but-unanswered requests.
    pub(crate) fn pending(&self) -> usize {
        self.pending
    }

    /// Admits one request of `class`, or sheds it.
    ///
    /// # Errors
    /// [`CsagError::Overloaded`] when the global bound or the class's
    /// bound is reached; nothing is counted in that case.
    pub(crate) fn try_admit(&mut self, class: &QueryClass) -> Result<(), CsagError> {
        let class_pending = self
            .per_class_pending
            .get(class.label())
            .copied()
            .unwrap_or(0);
        let class_full = self
            .per_class_capacity
            .is_some_and(|cap| class_pending >= cap);
        if self.pending >= self.capacity || class_full {
            return Err(CsagError::Overloaded {
                retry_after: self.retry_after(),
            });
        }
        self.pending += 1;
        *self
            .per_class_pending
            .entry(class.label().to_string())
            .or_insert(0) += 1;
        Ok(())
    }

    /// Releases one admitted request of `class` (it was answered).
    pub(crate) fn release(&mut self, class: &QueryClass) {
        self.pending = self.pending.saturating_sub(1);
        if let Some(n) = self.per_class_pending.get_mut(class.label()) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                self.per_class_pending.remove(class.label());
            }
        }
    }

    /// Feeds one observed computation time into the EWMA.
    pub(crate) fn observe_service_ms(&mut self, ms: f64) {
        const ALPHA: f64 = 0.2;
        if ms.is_finite() && ms >= 0.0 {
            self.ewma_service_ms = ALPHA * ms + (1.0 - ALPHA) * self.ewma_service_ms;
        }
    }

    /// Estimated time until the current backlog drains: pending
    /// computations × EWMA service time ÷ workers, clamped to a sane
    /// band.
    pub(crate) fn retry_after(&self) -> Duration {
        let drain_ms = (self.pending.max(1) as f64) * self.ewma_service_ms / self.workers as f64;
        Duration::from_secs_f64(drain_ms.max(0.0) / 1000.0).clamp(MIN_RETRY_AFTER, MAX_RETRY_AFTER)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn class(s: &str) -> QueryClass {
        QueryClass::new(s)
    }

    #[test]
    fn global_bound_sheds_with_typed_error() {
        let mut a = Admission::new(2, None, 1);
        assert!(a.try_admit(&class("a")).is_ok());
        assert!(a.try_admit(&class("b")).is_ok());
        let err = a.try_admit(&class("c")).unwrap_err();
        let CsagError::Overloaded { retry_after } = err else {
            panic!("expected Overloaded, got {err:?}");
        };
        assert!(retry_after >= MIN_RETRY_AFTER && retry_after <= MAX_RETRY_AFTER);
        // Releasing frees a slot.
        a.release(&class("a"));
        assert!(a.try_admit(&class("c")).is_ok());
        assert_eq!(a.pending(), 2);
    }

    #[test]
    fn per_class_bound_isolates_tenants() {
        let mut a = Admission::new(10, Some(1), 1);
        assert!(a.try_admit(&class("noisy")).is_ok());
        assert!(matches!(
            a.try_admit(&class("noisy")),
            Err(CsagError::Overloaded { .. })
        ));
        // A different class still gets in.
        assert!(a.try_admit(&class("quiet")).is_ok());
        a.release(&class("noisy"));
        assert!(a.try_admit(&class("noisy")).is_ok());
    }

    #[test]
    fn retry_after_scales_with_backlog_and_service_time() {
        let mut a = Admission::new(100, None, 2);
        for _ in 0..10 {
            a.try_admit(&class("x")).unwrap();
        }
        let fast = a.retry_after();
        for _ in 0..5 {
            a.observe_service_ms(100.0);
        }
        let slow = a.retry_after();
        assert!(slow > fast, "{slow:?} vs {fast:?}");
        assert!(slow <= MAX_RETRY_AFTER);
    }
}
