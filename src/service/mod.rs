//! # `csag::service` — admission-controlled community search under load
//!
//! The engine ([`crate::engine::Engine`]) answers one query; the
//! [`Service`] answers *traffic*. It wraps an evolving
//! [`GraphStore`] behind a request/response API built for sustained
//! concurrent load: a [`Request`] carries a
//! [`CommunityQuery`](crate::engine::CommunityQuery) plus the caller's
//! serving intent — a [`Priority`], an optional deadline, and a tenant
//! [`QueryClass`] — and [`Service::submit`] returns a [`Ticket`] whose
//! [`Response`] wraps the engine's answer in its serving envelope
//! (epoch, queue wait, deadline slack, coalescing/degradation flags).
//!
//! ## Invariants
//!
//! The service holds five invariants, in roughly the order they matter
//! when the graph is on fire:
//!
//! 1. **Bounded admission.** At most `capacity` requests (and
//!    optionally `per_class_capacity` per tenant class) are admitted
//!    but unanswered at any instant. Beyond that, [`Service::submit`]
//!    sheds *immediately* with
//!    [`crate::engine::CsagError::Overloaded`]
//!    carrying a `retry_after` derived from the observed drain rate —
//!    the queue never grows without bound, and latency of admitted
//!    work stays predictable.
//! 2. **Every admitted request is answered.** A ticket's
//!    [`Ticket::wait`] always returns: workers drain the queue even
//!    through shutdown, and invalid queries are rejected *before*
//!    admission so they never occupy a slot.
//! 3. **Identical in-flight queries coalesce.** Two admitted requests
//!    whose queries fingerprint identically (same knobs, same seed,
//!    *same store epoch*, and the same deadline *presence* — a
//!    deadline-free request asked for full effort and never rides a
//!    potentially degraded computation) share one engine computation;
//!    every waiter receives the same `Arc<CommunityResult>`
//!    (observable via `Arc::ptr_eq`). Coalesced requests still consume
//!    admission slots — coalescing dedups *work*, not *load
//!    accounting* — and a higher-priority duplicate escalates the
//!    queued job.
//! 4. **Deadlines degrade, they don't kill.** At dispatch the
//!    remaining wall time of the job's tightest deadline is mapped
//!    onto the method's effort knobs
//!    ([`CommunityQuery::fit_to_deadline`](crate::engine::CommunityQuery::fit_to_deadline)):
//!    SEA runs fewer rounds against a proportionally looser requested
//!    bound, exact search gets a derived state budget. The response's
//!    `degraded` flag and the result's accuracy certificate make the
//!    cheaper answer observable — the paper's accuracy-for-latency
//!    trade-off, applied per request.
//! 5. **Epoch isolation.** Each job pins a store [`Snapshot`] at
//!    admission; queries never coalesce across epochs, and the
//!    response names the epoch it answered from.
//!
//! ```
//! use csag::datasets::paper_examples::figure1_imdb;
//! use csag::engine::{CommunityQuery, Method};
//! use csag::service::{Priority, Request, Service, ServiceConfig};
//! use std::time::Duration;
//!
//! let (graph, q) = figure1_imdb();
//! let service = Service::over_graph(graph, ServiceConfig::default());
//! let response = service
//!     .run(
//!         Request::new(CommunityQuery::new(Method::Sea, q).with_k(3))
//!             .with_priority(Priority::Interactive)
//!             .with_deadline(Duration::from_millis(250)),
//!     )
//!     .expect("admitted");
//! let result = response.outcome.expect("a 3-core exists");
//! assert!(result.community.contains(&q));
//! assert_eq!(response.epoch, 0);
//! assert!(service.metrics().admitted >= 1);
//! ```
//!
//! On the wire, the same API speaks the `csag-wire` JSON-lines
//! protocol (normative spec: `docs/wire-protocol.md`): **v1** is the
//! strictly-ordered stdin/stdout mode of `csag serve`, and **v2** is
//! the pipelined socket mode served by [`Transport`] over TCP and
//! unix-domain sockets — many concurrent connections, each submitting
//! bursts of requests in one batched admission
//! ([`Service::submit_batch`]) and receiving responses out of order,
//! matched by client-assigned `id`.

pub mod admission;
pub mod metrics;
pub mod request;
pub mod scheduler;
pub mod transport;
pub mod wire;

pub use metrics::{HistogramSnapshot, MetricsSnapshot, ServiceMetrics};
pub use request::{Priority, QueryClass, Request, Response, Ticket};
pub use transport::{BoundAddr, Transport};
pub use wire::{parse_wire_request, rejection_to_json, response_to_json, WireRequest};

use crate::cluster::{ReadSource, Router, ShardedRouter};
use crate::engine::{CsagError, GraphStore, Snapshot};
use csag_graph::AttributedGraph;
use scheduler::{ReplyTo, Shared};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Duration;

/// What the service reads from: a single [`GraphStore`], or a
/// [`Router`]-fronted replica cluster. Both implement [`ReadSource`];
/// the scheduler only ever sees the trait.
enum Backend {
    /// One store, one machine: every read pins its newest snapshot.
    Store(Arc<GraphStore>),
    /// A primary plus N replicas behind the epoch-consistent router:
    /// unpinned reads balance across caught-up replicas, pinned reads
    /// route to a store that published the pinned epoch.
    Cluster(Arc<Router>),
    /// N partitioned shard stores behind the scatter-gather router:
    /// reads get a pinned cluster view and the shard planner decides,
    /// per query, between a shard-local run and a gathered union.
    Shards(Arc<ShardedRouter>),
}

impl Backend {
    fn source(&self) -> &dyn ReadSource {
        match self {
            Backend::Store(store) => store.as_ref(),
            Backend::Cluster(router) => router.as_ref(),
            Backend::Shards(router) => router.as_ref(),
        }
    }

    /// The store writes go to (the only store, the cluster primary, or
    /// the sharded cluster's journal — but sharded writes must be
    /// *applied* through [`ShardedRouter::apply`], never through this
    /// handle, or the shards will permanently lag).
    fn primary(&self) -> &Arc<GraphStore> {
        match self {
            Backend::Store(store) => store,
            Backend::Cluster(router) => router.primary(),
            Backend::Shards(router) => router.journal(),
        }
    }
}

/// Tuning knobs of a [`Service`]. The defaults suit an interactive
/// deployment on commodity hardware; every knob has a `with_*` setter.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads executing queries (each owns a private
    /// [`csag_graph::QueryWorkspace`], so the steady-state hot path
    /// stays allocation-free per worker).
    pub workers: usize,
    /// Bound on admitted-but-unanswered requests (invariant 1).
    pub capacity: usize,
    /// Optional per-[`QueryClass`] admission bound (tenant isolation).
    pub per_class_capacity: Option<usize>,
    /// Wall-time under which deadline pressure starts degrading effort
    /// (invariant 4): a request with at least this much deadline left
    /// runs at full effort.
    pub full_effort_latency: Duration,
    /// How long an epoch-pinned request *without* a deadline may wait
    /// for its pinned epoch to publish before the typed
    /// [`CsagError::EpochUnavailable`](crate::engine::CsagError)
    /// rejection (a request with a deadline waits at most that deadline
    /// instead).
    pub epoch_wait: Duration,
    /// Start with dequeuing paused (submissions are still admitted and
    /// queued). A deterministic seam for tests and staged rollouts;
    /// call [`Service::resume`] to open the floodgates.
    pub start_paused: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: crate::engine::batch::available_threads(),
            capacity: 256,
            per_class_capacity: None,
            full_effort_latency: Duration::from_millis(200),
            epoch_wait: Duration::from_millis(250),
            start_paused: false,
        }
    }
}

impl ServiceConfig {
    /// Sets the worker-thread count (at least 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the global admission bound (at least 1).
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity.max(1);
        self
    }

    /// Sets (or clears) the per-class admission bound.
    pub fn with_per_class_capacity(mut self, cap: Option<usize>) -> Self {
        self.per_class_capacity = cap;
        self
    }

    /// Sets the full-effort latency threshold.
    pub fn with_full_effort_latency(mut self, d: Duration) -> Self {
        self.full_effort_latency = d;
        self
    }

    /// Sets the deadline-free epoch-pin wait budget.
    pub fn with_epoch_wait(mut self, d: Duration) -> Self {
        self.epoch_wait = d;
        self
    }

    /// Starts the service with dequeuing paused.
    pub fn paused(mut self) -> Self {
        self.start_paused = true;
        self
    }
}

/// The admission-controlled serving front of a [`GraphStore`] (or a
/// [`Router`]-fronted replica cluster — [`Service::over_cluster`]). See
/// the [module docs](self) for the invariants it holds.
pub struct Service {
    backend: Backend,
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Service {
    /// Starts a service (and its worker pool) over an existing store.
    /// The store stays shared: callers keep applying
    /// [`GraphStore::apply`] batches while the service runs, and new
    /// submissions pin the newest epoch.
    pub fn new(store: Arc<GraphStore>, config: ServiceConfig) -> Self {
        Service::with_backend(Backend::Store(store), config)
    }

    /// [`Service::new`] over a fresh single-epoch store built from
    /// `graph` (the static-graph convenience).
    pub fn over_graph(graph: AttributedGraph, config: ServiceConfig) -> Self {
        Service::new(Arc::new(GraphStore::new(graph)), config)
    }

    /// Starts a service over a replica cluster: reads are routed by the
    /// [`Router`] (unpinned reads balance across caught-up replicas;
    /// epoch-pinned reads only land on a store that published the
    /// epoch), writes keep going through [`Router::apply`].
    pub fn over_cluster(router: Arc<Router>, config: ServiceConfig) -> Self {
        Service::with_backend(Backend::Cluster(router), config)
    }

    /// Starts a service over a sharded cluster: every read receives an
    /// epoch-pinned [`crate::cluster::ClusterView`] and runs through
    /// the shard planner; writes keep going through
    /// [`ShardedRouter::apply`].
    pub fn over_shards(router: Arc<ShardedRouter>, config: ServiceConfig) -> Self {
        Service::with_backend(Backend::Shards(router), config)
    }

    fn with_backend(backend: Backend, config: ServiceConfig) -> Self {
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared::new(
            config.capacity,
            config.per_class_capacity,
            workers,
            config.full_effort_latency,
            config.epoch_wait,
            config.start_paused,
        ));
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("csag-service-{i}"))
                    .spawn(move || shared.worker_loop())
                    .expect("spawn service worker")
            })
            .collect();
        Service {
            backend,
            shared,
            workers: handles,
        }
    }

    /// Submits one request: admit-or-shed, then queue or coalesce.
    ///
    /// # Errors
    /// * [`CsagError::InvalidParams`] — the query fails validation
    ///   (rejected before admission; costs no slot).
    /// * [`CsagError::Overloaded`] — admission capacity (global or
    ///   per-class) is exhausted; retry after the carried back-off.
    pub fn submit(&self, request: Request) -> Result<Ticket, CsagError> {
        self.shared.submit(self.backend.source(), request)
    }

    /// Submits a burst of requests as **one batch**: every request is
    /// validated, admitted-or-shed, and queued/coalesced under a single
    /// scheduler lock acquisition, and the worker pool is woken at most
    /// once for the whole batch (observable via
    /// [`MetricsSnapshot::wakes`]). This is the amortized path the
    /// pipelined socket transport rides; in-process callers with bursty
    /// workloads get the same economics here.
    ///
    /// Outcomes are positionally aligned with `requests`; each entry
    /// fails or succeeds independently with the same error cases as
    /// [`Service::submit`]. The whole batch pins one store epoch.
    pub fn submit_batch(&self, requests: Vec<Request>) -> Vec<Result<Ticket, CsagError>> {
        let mut receivers = Vec::with_capacity(requests.len());
        let entries = requests
            .into_iter()
            .map(|req| {
                let (tx, rx) = mpsc::channel();
                receivers.push(rx);
                (req, ReplyTo::Ticket(tx))
            })
            .collect();
        self.shared
            .submit_many(self.backend.source(), entries)
            .into_iter()
            .zip(receivers)
            .map(|(outcome, rx)| outcome.map(|id| Ticket { id, rx }))
            .collect()
    }

    /// The transport's submission seam: one parsed wire batch in, every
    /// admitted request's eventual [`Response`] delivered to `tx` (the
    /// connection's completion channel), and every rejected or shed
    /// entry answered immediately on the same channel — so the writer
    /// thread is the single place a connection's lines come from.
    pub(crate) fn submit_wire_batch(
        &self,
        batch: Vec<(Arc<str>, Request)>,
        tx: &mpsc::Sender<transport::Outgoing>,
    ) {
        let mut ids = Vec::with_capacity(batch.len());
        let entries = batch
            .into_iter()
            .map(|(id, req)| {
                ids.push(Arc::clone(&id));
                (req, ReplyTo::Connection { tx: tx.clone(), id })
            })
            .collect();
        for (outcome, id) in self
            .shared
            .submit_many(self.backend.source(), entries)
            .into_iter()
            .zip(ids)
        {
            if let Err(error) = outcome {
                let _ = tx.send(transport::Outgoing::Reject { id, error });
            }
        }
    }

    /// Submit + wait: the blocking convenience for callers without
    /// their own ticket bookkeeping.
    ///
    /// # Errors
    /// Same as [`Service::submit`].
    pub fn run(&self, request: Request) -> Result<Response, CsagError> {
        Ok(self.submit(request)?.wait())
    }

    /// The underlying evolving store — the only store, or the cluster
    /// primary. **Single-store services** apply updates through this;
    /// cluster-backed services must write through
    /// [`Service::cluster`]'s [`Router::apply`] instead (writing the
    /// primary directly would desynchronize the replicas).
    pub fn store(&self) -> &GraphStore {
        self.backend.primary()
    }

    /// A shared handle to the store (the cluster primary, if any).
    pub fn store_arc(&self) -> Arc<GraphStore> {
        Arc::clone(self.backend.primary())
    }

    /// The replica cluster behind this service, if it was started with
    /// [`Service::over_cluster`]. Writes to a cluster-backed service go
    /// through [`Router::apply`] on this handle.
    pub fn cluster(&self) -> Option<&Arc<Router>> {
        match &self.backend {
            Backend::Cluster(router) => Some(router),
            Backend::Store(_) | Backend::Shards(_) => None,
        }
    }

    /// The sharded cluster behind this service, when it was built with
    /// [`Service::over_shards`]. Writes to a sharded service go through
    /// [`ShardedRouter::apply`] on this handle.
    pub fn shards(&self) -> Option<&Arc<ShardedRouter>> {
        match &self.backend {
            Backend::Shards(router) => Some(router),
            Backend::Store(_) | Backend::Cluster(_) => None,
        }
    }

    /// Pins the primary store's current epoch (a read-side
    /// convenience).
    pub fn snapshot(&self) -> Snapshot {
        self.backend.primary().snapshot()
    }

    /// Point-in-time serving metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Admitted-but-unanswered request count.
    pub fn pending(&self) -> usize {
        self.shared.pending()
    }

    /// Holds queued work back (running computations finish; submissions
    /// keep being admitted and queued).
    pub fn pause(&self) {
        self.shared.pause();
    }

    /// Releases held-back work.
    pub fn resume(&self) {
        self.shared.resume();
    }
}

impl Drop for Service {
    /// Graceful teardown: the queue drains (every admitted request is
    /// answered — invariant 2 survives shutdown), then the pool joins.
    fn drop(&mut self) {
        self.shared.begin_shutdown();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

// The service is the thing callers share across their own threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Service>();
};
