//! Service observability: lock-free counters plus fixed-bucket
//! per-priority latency histograms, snapshotted into a plain
//! [`MetricsSnapshot`] with a stable JSON rendering
//! (`csag-service-metrics-v1`).

use crate::engine::result::{json_f64, json_string, push_key, push_kv};
use crate::service::request::Priority;
use std::sync::atomic::{AtomicU64, Ordering};

/// Upper bounds (milliseconds) of the latency histogram buckets; one
/// extra overflow bucket catches everything beyond the last bound.
/// Roughly log-spaced: fine resolution where interactive deadlines
/// live, coarse where batch work lands.
pub const BUCKET_BOUNDS_MS: [f64; 12] = [
    0.25, 0.5, 1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1000.0, 5000.0,
];

const BUCKETS: usize = BUCKET_BOUNDS_MS.len() + 1;

/// A fixed-bucket latency histogram (recorded in milliseconds).
/// Recording is one relaxed atomic increment; quantiles are estimated
/// at snapshot time as the upper bound of the bucket where the
/// cumulative count crosses the rank.
#[derive(Default)]
pub(crate) struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    /// Sum in microseconds (integer, so the mean needs no float atomics).
    sum_us: AtomicU64,
}

impl LatencyHistogram {
    pub(crate) fn record(&self, ms: f64) {
        let ix = BUCKET_BOUNDS_MS
            .iter()
            .position(|&b| ms <= b)
            .unwrap_or(BUCKETS - 1);
        self.buckets[ix].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us
            .fetch_add((ms * 1000.0).max(0.0) as u64, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = self.count.load(Ordering::Relaxed);
        let mean_ms = if count == 0 {
            0.0
        } else {
            self.sum_us.load(Ordering::Relaxed) as f64 / 1000.0 / count as f64
        };
        let quantile = |p: f64| -> f64 {
            if count == 0 {
                return 0.0;
            }
            let rank = (p * count as f64).ceil().max(1.0) as u64;
            let mut seen = 0u64;
            for (i, &c) in buckets.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    return BUCKET_BOUNDS_MS.get(i).copied().unwrap_or(f64::INFINITY);
                }
            }
            f64::INFINITY
        };
        HistogramSnapshot {
            count,
            mean_ms,
            p50_ms: quantile(0.50),
            p95_ms: quantile(0.95),
            p99_ms: quantile(0.99),
            buckets,
        }
    }
}

/// Point-in-time view of one latency histogram.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Mean latency in milliseconds.
    pub mean_ms: f64,
    /// Estimated median (upper bound of the covering bucket).
    pub p50_ms: f64,
    /// Estimated 95th percentile.
    pub p95_ms: f64,
    /// Estimated 99th percentile (`inf` ⇒ the overflow bucket).
    pub p99_ms: f64,
    /// Raw bucket counts (`BUCKET_BOUNDS_MS` + one overflow bucket).
    pub buckets: Vec<u64>,
}

/// The service's live counters. All recording is relaxed atomics — the
/// serving hot path never takes a metrics lock.
#[derive(Default)]
pub struct ServiceMetrics {
    pub(crate) submitted: AtomicU64,
    pub(crate) admitted: AtomicU64,
    pub(crate) shed: AtomicU64,
    /// Pre-admission rejections (invalid parameters, unservable
    /// method). `submitted == admitted + shed + rejected` always holds.
    pub(crate) rejected: AtomicU64,
    pub(crate) coalesced: AtomicU64,
    pub(crate) completed: AtomicU64,
    pub(crate) failed: AtomicU64,
    pub(crate) degraded: AtomicU64,
    /// Engine computations actually executed (< admitted when
    /// coalescing merged identical in-flight queries).
    pub(crate) executed: AtomicU64,
    /// Computations whose distance table was already resident when the
    /// worker picked them up.
    pub(crate) warm_hits: AtomicU64,
    /// Worker wake-ups issued by the submit path. Batched submission
    /// (one wake per batch, however many requests it carries) keeps
    /// this far below `admitted` under pipelined load.
    pub(crate) wakes: AtomicU64,
    pub(crate) per_priority: [LatencyHistogram; 3],
}

impl ServiceMetrics {
    /// Records one answered waiter's end-to-end latency under its
    /// priority.
    pub(crate) fn record_latency(&self, priority: Priority, ms: f64) {
        self.per_priority[priority.index()].record(ms);
    }

    /// A consistent-enough point-in-time copy of every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let executed = self.executed.load(Ordering::Relaxed);
        let warm_hits = self.warm_hits.load(Ordering::Relaxed);
        MetricsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            admitted: self.admitted.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            executed,
            warm_hits,
            wakes: self.wakes.load(Ordering::Relaxed),
            warm_hit_ratio: if executed == 0 {
                0.0
            } else {
                warm_hits as f64 / executed as f64
            },
            per_priority: [
                self.per_priority[0].snapshot(),
                self.per_priority[1].snapshot(),
                self.per_priority[2].snapshot(),
            ],
        }
    }
}

/// Point-in-time view of [`ServiceMetrics`].
#[derive(Clone, Debug)]
pub struct MetricsSnapshot {
    /// Requests offered to [`super::Service::submit`].
    pub submitted: u64,
    /// Requests admitted (queued or coalesced).
    pub admitted: u64,
    /// Requests shed with [`crate::engine::CsagError::Overloaded`].
    pub shed: u64,
    /// Requests rejected before admission (invalid parameters,
    /// unservable method) — `submitted == admitted + shed + rejected`.
    pub rejected: u64,
    /// Admitted requests that rode an identical in-flight computation.
    pub coalesced: u64,
    /// Waiters answered (success or typed failure).
    pub completed: u64,
    /// Waiters answered with a typed error.
    pub failed: u64,
    /// Waiters whose query was degraded by deadline pressure.
    pub degraded: u64,
    /// Engine computations actually executed.
    pub executed: u64,
    /// Computations that found their distance table resident.
    pub warm_hits: u64,
    /// Worker wake-ups issued by the submit path — with batched
    /// submission ([`super::Service::submit_batch`] and the socket
    /// transport) this stays far below `admitted` under pipelined load.
    pub wakes: u64,
    /// `warm_hits / executed` (0 when nothing executed).
    pub warm_hit_ratio: f64,
    /// Per-priority end-to-end latency histograms, indexed like
    /// [`Priority::ALL`] (batch, standard, interactive).
    pub per_priority: [HistogramSnapshot; 3],
}

impl MetricsSnapshot {
    /// Serializes the snapshot as one JSON object
    /// (`schema: csag-service-metrics-v1`).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(512);
        s.push('{');
        push_kv(&mut s, "schema", &json_string("csag-service-metrics-v1"));
        for (key, v) in [
            ("submitted", self.submitted),
            ("admitted", self.admitted),
            ("shed", self.shed),
            ("rejected", self.rejected),
            ("coalesced", self.coalesced),
            ("completed", self.completed),
            ("failed", self.failed),
            ("degraded", self.degraded),
            ("executed", self.executed),
            ("warm_hits", self.warm_hits),
            ("wakes", self.wakes),
        ] {
            s.push(',');
            push_kv(&mut s, key, &v.to_string());
        }
        s.push(',');
        push_kv(&mut s, "warm_hit_ratio", &json_f64(self.warm_hit_ratio));
        s.push(',');
        push_key(&mut s, "per_priority");
        s.push('{');
        for (i, p) in Priority::ALL.into_iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let h = &self.per_priority[p.index()];
            push_key(&mut s, p.name());
            s.push('{');
            push_kv(&mut s, "count", &h.count.to_string());
            s.push(',');
            push_kv(&mut s, "mean_ms", &json_f64(h.mean_ms));
            s.push(',');
            push_kv(&mut s, "p50_ms", &json_f64(h.p50_ms));
            s.push(',');
            push_kv(&mut s, "p95_ms", &json_f64(h.p95_ms));
            s.push(',');
            push_kv(&mut s, "p99_ms", &json_f64(h.p99_ms));
            s.push(',');
            push_key(&mut s, "buckets");
            s.push('[');
            for (j, b) in h.buckets.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push_str(&b.to_string());
            }
            s.push(']');
            s.push('}');
        }
        s.push('}');
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_cover_the_recorded_band() {
        let h = LatencyHistogram::default();
        for _ in 0..90 {
            h.record(0.8); // ≤ 1 ms bucket
        }
        for _ in 0..10 {
            h.record(40.0); // ≤ 50 ms bucket
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_ms, 1.0);
        assert_eq!(s.p95_ms, 50.0);
        assert_eq!(s.p99_ms, 50.0);
        assert!(s.mean_ms > 0.8 && s.mean_ms < 40.0);
        // The overflow bucket catches the unbounded tail.
        h.record(60_000.0);
        let s = h.snapshot();
        assert_eq!(*s.buckets.last().unwrap(), 1);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let s = LatencyHistogram::default().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.p50_ms, 0.0);
        assert_eq!(s.mean_ms, 0.0);
    }

    #[test]
    fn snapshot_json_is_well_formed() {
        let m = ServiceMetrics::default();
        m.submitted.store(7, Ordering::Relaxed);
        m.executed.store(4, Ordering::Relaxed);
        m.warm_hits.store(2, Ordering::Relaxed);
        m.record_latency(Priority::Interactive, 3.0);
        let snap = m.snapshot();
        assert_eq!(snap.warm_hit_ratio, 0.5);
        let j = snap.to_json();
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        for key in [
            "\"schema\":\"csag-service-metrics-v1\"",
            "\"submitted\":7",
            "\"warm_hit_ratio\":0.5",
            "\"per_priority\":{\"batch\"",
            "\"interactive\":{\"count\":1",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
    }
}
