//! # `csag::cluster` — replicated stores behind an epoch-consistent router
//!
//! One [`crate::engine::GraphStore`] is one writer lock and one
//! machine's worth of read throughput. This module scales the read
//! path out: a [`Router`] owns the write path — it applies
//! [`GraphUpdate`](crate::engine::GraphUpdate) batches to a **primary**
//! store and fans each batch out as a [`LogRecord`] to N in-process
//! **replica** stores — and load-balances reads across the replicas
//! with epoch-consistency guarantees.
//!
//! ## The guarantees
//!
//! * **Epoch lockstep.** The replication log format is `csag-updates
//!   v1`, one [`LogRecord`] per published epoch; every store bumps its
//!   epoch exactly once per batch (no-op and erroneous batches
//!   included), so primary and replicas that consumed the same records
//!   agree on epoch numbering — and, because
//!   [`GraphStore::apply`](crate::engine::GraphStore::apply) is
//!   deterministic, on every answer at equal epochs, byte for byte.
//! * **Pinned reads never read backward.** A read pinned to epoch `E`
//!   (wire key `"epoch"`, [`Request::with_epoch`](crate::service::Request::with_epoch))
//!   is only routed to a store whose published high-watermark is
//!   `>= E`: a caught-up replica, else the primary, else a bounded
//!   condvar wait for the publish — else the typed
//!   [`CsagError::EpochUnavailable`](crate::engine::CsagError) rejection.
//! * **Unpinned reads balance.** They go to the least-loaded healthy
//!   replica that has caught up to the primary's current epoch
//!   (outstanding-lease counting; the primary is the fallback, and the
//!   only store when `--replicas 0`).
//! * **Failure degrades, then heals.** A replica that fails an apply
//!   (or goes silent past [`Router::health_check`]'s budget) is marked
//!   [`ReplicaHealth::Degraded`], leaves the read rotation with its
//!   watermark frozen (so no pinned read can land on stale state), and
//!   is reseeded from the primary's current snapshot on the next write
//!   (or [`Router::heal`]) — clients never see a failed response from
//!   the transition.
//!
//! The replica seam is distribution-shaped — a replica consumes an
//! ordered stream of [`LogRecord`]s and publishes a watermark, nothing
//! more — and [`remote`] takes it across the process boundary: a
//! [`ReplListener`] on the primary speaks `csag-repl v1` over TCP/UDS
//! (handshake on the follower's epoch, WAL-tail replay or checkpoint
//! snapshot shipping to catch up, then the framed live stream), and a
//! [`Follower`] in another process applies it through the ordinary
//! store, acking its watermark back. Remote members live in the same
//! lifecycle: drops and ack silence degrade, reconnects reseed.
//!
//! ```
//! use csag::cluster::{ReadSource, Router};
//! use csag::datasets::paper_examples::figure1_imdb;
//! use csag::engine::{CommunityQuery, GraphUpdate, Method};
//! use std::time::Duration;
//!
//! let (graph, q) = figure1_imdb();
//! let router = Router::over_graph(graph, 2);
//! router.apply(&[GraphUpdate::AddEdge { u: q, v: 0 }]).unwrap();
//! router.wait_replicas_caught_up(Duration::from_secs(5));
//!
//! // A read pinned to epoch 1 is never served by a store that has not
//! // published epoch 1.
//! let routed = router
//!     .route_read(Some(1), Duration::from_millis(100))
//!     .unwrap();
//! assert!(routed.epoch() >= 1);
//! let result = routed
//!     .snapshot()
//!     .engine()
//!     .run(&CommunityQuery::new(Method::Exact, q).with_k(3))
//!     .unwrap();
//! assert!(result.community.contains(&q));
//! ```

pub mod health;
pub mod remote;
pub mod replica;
pub mod replication;
pub mod router;
pub mod shard;

pub use health::ReplicaHealth;
pub use remote::{Follower, FollowerConfig, ReplListener};
pub use replication::LogRecord;
pub use router::{
    ClusterMetrics, ReadOrigin, ReadSource, RemoteReplicaMetrics, ReplicaMetrics, RoutedSnapshot,
    Router, ShardSectionMetrics,
};
pub use shard::{ClusterView, ShardPlan, ShardedRouter};
