//! The replica worker: one thread per replica consuming the router's
//! replication channel, applying [`LogRecord`]s to its own
//! [`GraphStore`], advancing its high-watermark, and heartbeating.
//!
//! The channel **is** the log: records arrive in epoch order because
//! the router serializes primary-apply + fan-out under one write lock.
//! A replica therefore never reorders or merges — it applies each
//! record whose epoch extends its store by exactly one, skips records
//! at or below its epoch (the overlap a reseed leaves behind), and
//! degrades itself on any gap or induced failure. Degraded replicas
//! keep draining the channel (discarding records) so the queued reseed
//! — which the router enqueues *in order* with later records — lands
//! with everything after it still lined up.

use crate::cluster::health::{ReplicaHealth, StatusCell, Watermark};
use crate::cluster::replication::LogRecord;
use crate::engine::{GraphStore, Snapshot};
use csag_graph::AttributedGraph;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::time::Duration;

/// How long an idle replica waits for a record before heartbeating again.
const IDLE_BEAT: Duration = Duration::from_millis(20);

/// What the router sends down a replica's channel.
pub(crate) enum ReplicaMsg {
    /// Apply one replication log record.
    Apply(LogRecord),
    /// Replace the replica's store with a rebuild from the primary's
    /// epoch-`epoch` snapshot graph (full-state catch-up).
    Reseed {
        graph: Arc<AttributedGraph>,
        epoch: u64,
    },
    /// Drain and exit (router drop).
    Shutdown,
}

/// State shared between a replica's thread and the router.
pub(crate) struct ReplicaState {
    pub(crate) id: usize,
    /// The replica's store; swapped wholesale by a reseed, so readers
    /// go through [`ReplicaState::snapshot`] rather than caching it.
    store: Mutex<Arc<GraphStore>>,
    /// Highest epoch this replica has published (always `<=` the
    /// store's actual epoch — advanced only *after* an apply returns).
    pub(crate) watermark: Watermark,
    pub(crate) status: StatusCell,
    pub(crate) applied: AtomicU64,
    pub(crate) apply_errors: AtomicU64,
    pub(crate) reseeds: AtomicU64,
    pub(crate) routed_reads: AtomicU64,
    /// Reads currently leased against this replica (load-balancing
    /// signal; decremented by `ReadLease::drop`).
    pub(crate) outstanding: Arc<AtomicU64>,
    /// Test/bench seam: stop consuming the channel (records queue up —
    /// simulated replication lag) while still heartbeating.
    pub(crate) paused: AtomicBool,
    /// Test/bench seam: additionally stop heartbeating while paused,
    /// so `Router::health_check` sees a silent replica.
    pub(crate) silenced: AtomicBool,
    /// Test/bench seam: fail the next apply (induced replica failure).
    pub(crate) fail_next: AtomicBool,
}

impl ReplicaState {
    pub(crate) fn new(id: usize, store: Arc<GraphStore>) -> Self {
        let epoch = store.published_epoch();
        ReplicaState {
            id,
            store: Mutex::new(store),
            watermark: Watermark::new(epoch),
            status: StatusCell::new(),
            applied: AtomicU64::new(0),
            apply_errors: AtomicU64::new(0),
            reseeds: AtomicU64::new(0),
            routed_reads: AtomicU64::new(0),
            outstanding: Arc::new(AtomicU64::new(0)),
            paused: AtomicBool::new(false),
            silenced: AtomicBool::new(false),
            fail_next: AtomicBool::new(false),
        }
    }

    /// Pins the replica's current epoch for reading.
    pub(crate) fn snapshot(&self) -> Snapshot {
        self.store
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .snapshot()
    }

    fn swap_store(&self, fresh: Arc<GraphStore>) {
        *self.store.lock().unwrap_or_else(PoisonError::into_inner) = fresh;
    }
}

/// The replica thread body.
pub(crate) fn replica_loop(state: Arc<ReplicaState>, rx: mpsc::Receiver<ReplicaMsg>) {
    loop {
        if !state.silenced.load(Ordering::Relaxed) {
            state.status.beat();
        }
        if state.paused.load(Ordering::Relaxed) {
            std::thread::sleep(Duration::from_millis(1));
            continue;
        }
        match rx.recv_timeout(IDLE_BEAT) {
            Ok(ReplicaMsg::Apply(record)) => apply_record(&state, record),
            Ok(ReplicaMsg::Reseed { graph, epoch }) => {
                // Full-state catch-up: rebuild the store (fresh core
                // peel) at the primary's epoch numbering, then rejoin
                // the rotation. Records queued behind this message with
                // epoch <= `epoch` are skipped by the overlap check.
                let fresh = Arc::new(GraphStore::from_arc_at(graph, epoch));
                state.swap_store(fresh);
                state.reseeds.fetch_add(1, Ordering::Relaxed);
                state.watermark.advance_to(epoch);
                state.status.set_health(ReplicaHealth::Healthy);
            }
            Ok(ReplicaMsg::Shutdown) | Err(mpsc::RecvTimeoutError::Disconnected) => return,
            Err(mpsc::RecvTimeoutError::Timeout) => {}
        }
    }
}

fn apply_record(state: &ReplicaState, record: LogRecord) {
    if state.fail_next.swap(false, Ordering::Relaxed) {
        state.apply_errors.fetch_add(1, Ordering::Relaxed);
        state.status.set_health(ReplicaHealth::Degraded);
        return;
    }
    if state.status.health() != ReplicaHealth::Healthy {
        // Out of the rotation: discard until the queued reseed lands.
        // The watermark stays frozen, so no pinned read can route here.
        return;
    }
    let store = Arc::clone(&state.store.lock().unwrap_or_else(PoisonError::into_inner));
    let before = store.published_epoch();
    if record.epoch <= before {
        // Overlap with a reseed snapshot that already contained this
        // batch's effects: skip, numbering is already covered.
        return;
    }
    // The primary applied this exact batch to the identical epoch-
    // `before` state, so the outcome — including a deterministic
    // GraphError and its published prefix — matches by construction;
    // an error here is replication working, not failing.
    let _ = store.apply(&record.updates);
    let after = store.published_epoch();
    if after != record.epoch {
        // A gap in the log (should be impossible over an in-order
        // channel): this replica's state can no longer be trusted.
        state.apply_errors.fetch_add(1, Ordering::Relaxed);
        state.status.set_health(ReplicaHealth::Degraded);
        return;
    }
    state.applied.fetch_add(1, Ordering::Relaxed);
    state.watermark.advance_to(after);
}
