//! The epoch-consistent router: owns the write path (primary apply +
//! log fan-out) and load-balances reads across caught-up replicas.
//!
//! See the [module docs](super) for the guarantees; the short version:
//!
//! * **Writes** go through [`Router::apply`]: the primary applies the
//!   batch, then one [`LogRecord`] per published epoch fans out to
//!   every replica channel — both under one write lock, so each
//!   channel receives records in epoch order.
//! * **Reads** go through [`ReadSource::route_read`]: an unpinned read
//!   picks the least-loaded healthy caught-up replica (primary as
//!   fallback); a read pinned to epoch `E` is only ever served by a
//!   store whose published watermark is `>= E` — a lagging replica is
//!   skipped, the primary steps in, and a not-yet-published epoch
//!   waits (condvar, no polling) up to the caller's budget before
//!   failing with the typed
//!   [`CsagError::EpochUnavailable`](crate::engine::CsagError).

use crate::cluster::health::ReplicaHealth;
use crate::cluster::remote::feed::{CatchUp, RemoteAttach, RemoteMember};
use crate::cluster::replica::{replica_loop, ReplicaMsg, ReplicaState};
use crate::cluster::replication::LogRecord;
use crate::cluster::shard::{planner, ClusterView, ShardStats};
use crate::durability::WalError;
use crate::engine::query::CommunityQuery;
use crate::engine::result::{json_f64, json_string, push_key, push_kv};
use crate::engine::{
    ApplyError, CommunityResult, CsagError, GraphStore, GraphUpdate, Snapshot, UpdateReport,
};
use csag_graph::{AttributedGraph, NodeId, QueryWorkspace};
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// Which store answered a routed read.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadOrigin {
    /// The primary store (the write path's own copy).
    Primary,
    /// Replica `i` (0-based).
    Replica(usize),
    /// A sharded cluster view ([`crate::cluster::shard::ShardedRouter`]):
    /// the answering store is decided per query by the shard planner.
    Sharded,
}

/// A claim on a replica's read capacity; dropping it (with the last
/// clone of its routed snapshot) releases the replica's `outstanding`
/// slot, which is the router's least-loaded signal.
pub(crate) struct ReadLease {
    outstanding: Arc<AtomicU64>,
}

impl ReadLease {
    fn acquire(outstanding: &Arc<AtomicU64>) -> Arc<ReadLease> {
        outstanding.fetch_add(1, Ordering::Relaxed);
        Arc::new(ReadLease {
            outstanding: Arc::clone(outstanding),
        })
    }
}

impl Drop for ReadLease {
    fn drop(&mut self) {
        self.outstanding.fetch_sub(1, Ordering::Relaxed);
    }
}

/// What a routed read resolves to: one pinned engine snapshot (the
/// single-store and replica cases), or a whole pinned [`ClusterView`]
/// whose per-query store is decided by the shard planner.
#[derive(Clone)]
enum RouteTarget {
    Engine(Snapshot),
    Shards {
        view: Arc<ClusterView>,
        stats: Arc<ShardStats>,
    },
}

/// A routed read: the pinned [`Snapshot`] (or sharded [`ClusterView`])
/// that will answer, where it came from, and (for replica reads) the
/// load-accounting lease that lives as long as any clone of this value.
#[derive(Clone)]
pub struct RoutedSnapshot {
    target: RouteTarget,
    origin: ReadOrigin,
    _lease: Option<Arc<ReadLease>>,
}

impl std::fmt::Debug for RoutedSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RoutedSnapshot")
            .field("epoch", &self.epoch())
            .field("origin", &self.origin)
            .finish_non_exhaustive()
    }
}

impl RoutedSnapshot {
    /// Wraps a primary-store snapshot (no lease to account).
    pub(crate) fn primary(snapshot: Snapshot) -> Self {
        RoutedSnapshot {
            target: RouteTarget::Engine(snapshot),
            origin: ReadOrigin::Primary,
            _lease: None,
        }
    }

    /// Wraps a pinned cluster view from a sharded router.
    pub(crate) fn sharded(view: Arc<ClusterView>, stats: Arc<ShardStats>) -> Self {
        RoutedSnapshot {
            target: RouteTarget::Shards { view, stats },
            origin: ReadOrigin::Sharded,
            _lease: None,
        }
    }

    /// The snapshot that will answer the read. For a sharded read this
    /// is the view's whole-graph assembly (built lazily, at most once
    /// per cluster epoch) — per-query work should go through
    /// [`RoutedSnapshot::run_with_workspace`] instead, which routes to
    /// individual shards.
    pub fn snapshot(&self) -> &Snapshot {
        match &self.target {
            RouteTarget::Engine(snapshot) => snapshot,
            RouteTarget::Shards { view, .. } => view.assembly(),
        }
    }

    /// The epoch the read will answer from (for a read pinned to `E`,
    /// always `>= E`).
    pub fn epoch(&self) -> u64 {
        match &self.target {
            RouteTarget::Engine(snapshot) => snapshot.epoch(),
            RouteTarget::Shards { view, .. } => view.epoch(),
        }
    }

    /// Which store the read was routed to.
    pub fn origin(&self) -> ReadOrigin {
        self.origin
    }

    /// Whether the distance table for `(q, γ)` is already resident on
    /// the store that would answer — the scheduler's warm-start signal.
    /// For a sharded read, the home shard's cache is consulted.
    pub fn warm_hit(&self, q: NodeId, gamma: f64) -> bool {
        match &self.target {
            RouteTarget::Engine(snapshot) => snapshot.engine().cached_distances(q, gamma).is_some(),
            RouteTarget::Shards { view, .. } => {
                (q as usize) < view.journal().engine().graph().n()
                    && view
                        .shard(view.owner(q))
                        .engine()
                        .cached_distances(q, gamma)
                        .is_some()
            }
        }
    }

    /// Runs one query against the routed target: directly on the
    /// pinned engine, or — for a sharded read — through the shard
    /// planner (shard-local under a coverage certificate,
    /// scatter-gather otherwise). Byte-identical either way.
    ///
    /// # Errors
    /// Same as [`crate::engine::Engine::run`].
    pub fn run_with_workspace(
        &self,
        query: &CommunityQuery,
        ws: &mut QueryWorkspace,
    ) -> Result<CommunityResult, CsagError> {
        match &self.target {
            RouteTarget::Engine(snapshot) => snapshot.engine().run_with_workspace(query, ws),
            RouteTarget::Shards { view, stats } => planner::execute(view, stats, query, ws),
        }
    }
}

/// Where a scheduler gets its read snapshots: either a bare
/// [`GraphStore`] (single-store serving, the pre-cluster behavior) or a
/// [`Router`] fronting N replicas. The contract both uphold: the
/// returned snapshot's epoch is `>= pin` whenever a pin is given, and
/// a pin no store can satisfy within `wait` fails with
/// [`CsagError::EpochUnavailable`] instead of serving stale state.
pub trait ReadSource: Send + Sync {
    /// Routes one read: `pin` is the minimum epoch the answer may come
    /// from (`None`: any current epoch), `wait` bounds how long the
    /// router may block for a not-yet-published pinned epoch.
    ///
    /// # Errors
    /// [`CsagError::EpochUnavailable`] when `pin` exceeds every
    /// reachable store's published epoch for the whole `wait` budget.
    fn route_read(&self, pin: Option<u64>, wait: Duration) -> Result<RoutedSnapshot, CsagError>;
}

impl ReadSource for GraphStore {
    /// Single-store routing: the current snapshot, or — for a pinned
    /// read — a condvar wait on the store's own publish watermark.
    fn route_read(&self, pin: Option<u64>, wait: Duration) -> Result<RoutedSnapshot, CsagError> {
        match pin {
            None => Ok(RoutedSnapshot::primary(self.snapshot())),
            Some(epoch) => {
                let snap = self.snapshot();
                if snap.epoch() >= epoch {
                    return Ok(RoutedSnapshot::primary(snap));
                }
                if self.subscribe().wait_for(epoch, wait) {
                    Ok(RoutedSnapshot::primary(self.snapshot()))
                } else {
                    Err(CsagError::EpochUnavailable {
                        requested: epoch,
                        published: self.published_epoch(),
                    })
                }
            }
        }
    }
}

/// One replica as the router holds it: shared state + channel + thread.
struct ReplicaHandle {
    state: Arc<ReplicaState>,
    tx: mpsc::Sender<ReplicaMsg>,
    join: Option<JoinHandle<()>>,
}

impl ReplicaHandle {
    fn spawn(id: usize, seed: &Snapshot) -> Self {
        let store = Arc::new(GraphStore::from_arc_at(
            seed.engine().graph_arc(),
            seed.epoch(),
        ));
        let state = Arc::new(ReplicaState::new(id, store));
        let (tx, rx) = mpsc::channel();
        let join = std::thread::Builder::new()
            .name(format!("csag-replica-{id}"))
            .spawn({
                let state = Arc::clone(&state);
                move || replica_loop(state, rx)
            })
            .expect("spawn replica thread");
        ReplicaHandle {
            state,
            tx,
            join: Some(join),
        }
    }
}

/// The cluster front-end: primary store + N in-process replicas behind
/// an epoch-consistent read router. See the [module docs](super).
pub struct Router {
    primary: Arc<GraphStore>,
    replicas: Vec<ReplicaHandle>,
    /// Remote replicas (followers in other processes), registered by
    /// the replication listener as their connections handshake. Keyed
    /// by follower name; entries survive disconnects.
    remotes: Mutex<Vec<Arc<RemoteMember>>>,
    /// Serializes primary-apply + fan-out so every replica channel
    /// receives log records in epoch order.
    write: Mutex<()>,
    /// Rotation offset for least-loaded ties.
    rotate: AtomicUsize,
    records: AtomicU64,
    pinned_reads: AtomicU64,
    unpinned_reads: AtomicU64,
    primary_reads: AtomicU64,
    pinned_waits: AtomicU64,
    pinned_rejects: AtomicU64,
}

impl Router {
    /// Fronts an existing primary store with `replicas` in-process
    /// replica stores, each seeded from the primary's current snapshot.
    pub fn new(primary: Arc<GraphStore>, replicas: usize) -> Self {
        let seed = primary.snapshot();
        let replicas = (0..replicas)
            .map(|id| ReplicaHandle::spawn(id, &seed))
            .collect();
        Router {
            primary,
            replicas,
            remotes: Mutex::new(Vec::new()),
            write: Mutex::new(()),
            rotate: AtomicUsize::new(0),
            records: AtomicU64::new(0),
            pinned_reads: AtomicU64::new(0),
            unpinned_reads: AtomicU64::new(0),
            primary_reads: AtomicU64::new(0),
            pinned_waits: AtomicU64::new(0),
            pinned_rejects: AtomicU64::new(0),
        }
    }

    /// [`Router::new`] over a fresh store built from `graph`.
    pub fn over_graph(graph: AttributedGraph, replicas: usize) -> Self {
        Router::new(Arc::new(GraphStore::new(graph)), replicas)
    }

    /// [`Router::new`] over a fresh WAL-backed primary
    /// ([`GraphStore::with_wal`]): every batch routed through
    /// [`Router::apply`] is durably logged before it publishes or fans
    /// out. Replicas stay in-memory — they are rebuilt from the
    /// recovered primary, not from their own logs.
    ///
    /// # Errors
    /// [`WalError`] when the log directory cannot be initialized.
    pub fn with_wal(
        graph: AttributedGraph,
        replicas: usize,
        dir: impl AsRef<Path>,
    ) -> Result<Self, WalError> {
        let store = GraphStore::with_wal(graph, dir)?;
        Ok(Router::new(Arc::new(store), replicas))
    }

    /// Rebuilds the primary from a WAL directory
    /// ([`GraphStore::recover`]) and fronts it with `replicas` fresh
    /// replicas seeded from the recovered snapshot.
    ///
    /// # Errors
    /// [`WalError`] when the directory is uninitialized or corrupt
    /// beyond what a crash can explain.
    pub fn recover(
        dir: impl AsRef<Path>,
        replicas: usize,
    ) -> Result<(Self, crate::durability::RecoveryReport), WalError> {
        let (store, report) = GraphStore::recover(dir)?;
        Ok((Router::new(Arc::new(store), replicas), report))
    }

    /// The primary store (reads through it bypass the rotation; apply
    /// through [`Router::apply`], never directly, or replicas will
    /// permanently lag).
    pub fn primary(&self) -> &Arc<GraphStore> {
        &self.primary
    }

    /// Number of replicas behind this router.
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// The primary's published epoch (the cluster-wide high-watermark).
    pub fn epoch(&self) -> u64 {
        self.primary.published_epoch()
    }

    /// The cluster write path: applies `updates` to the primary and
    /// fans the resulting [`LogRecord`] out to every replica channel.
    /// A degraded replica instead receives a reseed from the post-batch
    /// primary snapshot (it rejoins the rotation once rebuilt).
    ///
    /// # Errors
    /// Exactly [`GraphStore::apply`]'s errors. An erroneous batch
    /// ([`ApplyError::Graph`]) still publishes (and replicates) its
    /// applied prefix — the epoch bumps on every outcome, keeping
    /// primary and replicas in lockstep. A durability rejection
    /// ([`ApplyError::DurabilityUnavailable`]) applied *nothing* — no
    /// epoch bump — so no record fans out either.
    pub fn apply(&self, updates: &[GraphUpdate]) -> Result<UpdateReport, ApplyError> {
        let _guard = self.write.lock().unwrap_or_else(PoisonError::into_inner);
        let outcome = self.primary.apply(updates);
        if matches!(outcome, Err(ApplyError::DurabilityUnavailable { .. })) {
            // The primary is byte-for-byte unchanged: replicating would
            // fan out a record for an epoch that never happened.
            return outcome;
        }
        let snap = self.primary.snapshot();
        let record = LogRecord::new(snap.epoch(), updates.to_vec());
        self.records.fetch_add(1, Ordering::Relaxed);
        for replica in &self.replicas {
            if replica.state.status.health() == ReplicaHealth::Degraded {
                replica.state.status.set_health(ReplicaHealth::Reseeding);
                let _ = replica.tx.send(ReplicaMsg::Reseed {
                    graph: snap.engine().graph_arc(),
                    epoch: snap.epoch(),
                });
            } else {
                let _ = replica.tx.send(ReplicaMsg::Apply(record.clone()));
            }
        }
        for remote in self.remotes().iter() {
            remote.send(&record);
        }
        outcome
    }

    fn remotes(&self) -> std::sync::MutexGuard<'_, Vec<Arc<RemoteMember>>> {
        self.remotes.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Registers (or re-attaches) the remote replica `name` under the
    /// write lock and decides its catch-up path against the primary's
    /// epoch *at attach time*: every record fanned out after this call
    /// has a higher epoch, so the connection that executes the returned
    /// [`CatchUp`] and then forwards the feed delivers a gapless,
    /// in-order stream.
    ///
    /// # Errors
    /// A message for the `error` handshake response — today only a
    /// follower claiming an epoch *above* the primary's (it followed a
    /// different history; applying our records to it would corrupt it).
    pub(crate) fn attach_remote(
        &self,
        name: &str,
        follower_epoch: Option<u64>,
    ) -> Result<RemoteAttach, String> {
        let _guard = self.write.lock().unwrap_or_else(PoisonError::into_inner);
        let pinned = self.primary.published_epoch();
        if follower_epoch.is_some_and(|e| e > pinned) {
            return Err(format!(
                "follower epoch {} is ahead of primary epoch {pinned}",
                follower_epoch.unwrap_or(0)
            ));
        }
        let member = {
            let mut remotes = self.remotes();
            match remotes.iter().find(|m| m.name == name) {
                Some(m) => Arc::clone(m),
                None => {
                    let m = Arc::new(RemoteMember::new(name));
                    remotes.push(Arc::clone(&m));
                    m
                }
            }
        };
        let catch_up = match follower_epoch {
            Some(e) if e == pinned => CatchUp::Stream { from: e },
            Some(e) => match self
                .primary
                .wal()
                .and_then(|w| crate::durability::read_tail_records(w.dir(), e, pinned))
            {
                Some(records) => CatchUp::Tail { from: e, records },
                None => self.snapshot_catch_up(pinned)?,
            },
            None => self.snapshot_catch_up(pinned)?,
        };
        if matches!(catch_up, CatchUp::Snapshot { .. }) {
            member.status.set_health(ReplicaHealth::Reseeding);
        }
        let (tx, rx) = mpsc::channel();
        let generation = member.attach(tx);
        Ok(RemoteAttach {
            member,
            feed: rx,
            generation,
            catch_up,
        })
    }

    /// Builds the snapshot-shipping payload for a follower that must be
    /// reseeded: the newest WAL checkpoint's raw bytes plus the log
    /// tail up to `pinned` when the primary is durable (no re-encoding
    /// — the `csag::durability` checkpoint file *is* the payload), else
    /// a fresh in-memory serialization of the current snapshot.
    fn snapshot_catch_up(&self, pinned: u64) -> Result<CatchUp, String> {
        if let Some(wal) = self.primary.wal() {
            if let Ok((epoch, bytes)) = wal.checkpoint_bytes() {
                if let Some(tail) = crate::durability::read_tail_records(wal.dir(), epoch, pinned) {
                    return Ok(CatchUp::Snapshot { epoch, bytes, tail });
                }
            }
        }
        let snap = self.primary.snapshot();
        let mut bytes = Vec::new();
        csag_graph::io::write_graph(snap.engine().graph(), &mut bytes)
            .map_err(|e| format!("serializing snapshot: {e}"))?;
        Ok(CatchUp::Snapshot {
            epoch: snap.epoch(),
            bytes,
            tail: Vec::new(),
        })
    }

    /// Number of remote replicas ever registered (connected or not).
    pub fn remote_count(&self) -> usize {
        self.remotes().len()
    }

    /// Current health of the remote replica `name`, if registered.
    pub fn remote_health(&self, name: &str) -> Option<ReplicaHealth> {
        self.remotes()
            .iter()
            .find(|m| m.name == name)
            .map(|m| m.status.health())
    }

    /// The highest epoch remote replica `name` has acked, if registered.
    pub fn remote_watermark(&self, name: &str) -> Option<u64> {
        self.remotes()
            .iter()
            .find(|m| m.name == name)
            .map(|m| m.watermark.current())
    }

    /// Blocks until remote replica `name`'s acked watermark reaches the
    /// primary's current epoch, or `timeout` elapses. `false` when the
    /// member is unknown or the wait times out.
    pub fn wait_remote_caught_up(&self, name: &str, timeout: Duration) -> bool {
        let target = self.primary.published_epoch();
        let member = self
            .remotes()
            .iter()
            .find(|m| m.name == name)
            .map(Arc::clone);
        match member {
            Some(m) => m.watermark.wait_for(target, timeout),
            None => false,
        }
    }

    /// Queues a reseed for every currently degraded replica (the write
    /// path does this lazily on the next batch; `heal` forces it now).
    /// Returns how many reseeds were queued.
    pub fn heal(&self) -> usize {
        let _guard = self.write.lock().unwrap_or_else(PoisonError::into_inner);
        let snap = self.primary.snapshot();
        let mut queued = 0;
        for replica in &self.replicas {
            if replica.state.status.health() == ReplicaHealth::Degraded {
                replica.state.status.set_health(ReplicaHealth::Reseeding);
                let _ = replica.tx.send(ReplicaMsg::Reseed {
                    graph: snap.engine().graph_arc(),
                    epoch: snap.epoch(),
                });
                queued += 1;
            }
        }
        queued
    }

    /// Degrades every healthy replica — in-process or remote — that has
    /// not heartbeat (for remotes: acked) within `max_silence`
    /// (reseeding replicas are busy rebuilding and exempt by design).
    /// Returns how many were newly degraded; local replicas reseed on
    /// the next [`Router::heal`] / [`Router::apply`], remote ones on
    /// their next reconnect handshake.
    pub fn health_check(&self, max_silence: Duration) -> usize {
        let mut degraded = 0;
        for replica in &self.replicas {
            if replica.state.status.health() == ReplicaHealth::Healthy
                && replica.state.status.silence() > max_silence
            {
                replica.state.status.set_health(ReplicaHealth::Degraded);
                degraded += 1;
            }
        }
        for remote in self.remotes().iter() {
            if remote.status.health() == ReplicaHealth::Healthy
                && remote.status.silence() > max_silence
            {
                remote.status.set_health(ReplicaHealth::Degraded);
                degraded += 1;
            }
        }
        degraded
    }

    /// Current health of replica `i`.
    pub fn replica_health(&self, i: usize) -> ReplicaHealth {
        self.replicas[i].state.status.health()
    }

    /// Replica `i`'s published high-watermark.
    pub fn replica_watermark(&self, i: usize) -> u64 {
        self.replicas[i].state.watermark.current()
    }

    /// Blocks until every healthy replica's watermark reaches the
    /// primary's current epoch, or `timeout` elapses. `true` when all
    /// caught up (vacuously, when no replica is healthy).
    pub fn wait_replicas_caught_up(&self, timeout: Duration) -> bool {
        let target = self.primary.published_epoch();
        let deadline = std::time::Instant::now() + timeout;
        self.replicas
            .iter()
            .filter(|r| r.state.status.health() == ReplicaHealth::Healthy)
            .all(|r| {
                let left = deadline.saturating_duration_since(std::time::Instant::now());
                r.state.watermark.wait_for(target, left)
            })
    }

    /// Test/bench seam: stop replica `i` consuming its channel (records
    /// queue up — simulated replication lag). It keeps heartbeating.
    pub fn pause_replica(&self, i: usize) {
        self.replicas[i].state.paused.store(true, Ordering::Relaxed);
    }

    /// Undoes [`Router::pause_replica`]; the replica drains its backlog.
    pub fn resume_replica(&self, i: usize) {
        self.replicas[i]
            .state
            .paused
            .store(false, Ordering::Relaxed);
        self.replicas[i]
            .state
            .silenced
            .store(false, Ordering::Relaxed);
    }

    /// Test/bench seam: pause replica `i` *and* stop its heartbeat, so
    /// [`Router::health_check`] observes a silent replica.
    pub fn silence_replica(&self, i: usize) {
        self.replicas[i]
            .state
            .silenced
            .store(true, Ordering::Relaxed);
        self.replicas[i].state.paused.store(true, Ordering::Relaxed);
    }

    /// Test/bench seam: replica `i` fails its next apply (an induced
    /// replica failure: it degrades and leaves the read rotation until
    /// reseeded).
    pub fn induce_failure(&self, i: usize) {
        self.replicas[i]
            .state
            .fail_next
            .store(true, Ordering::Relaxed);
    }

    /// Picks the least-loaded healthy replica whose watermark has
    /// reached `min_epoch` (rotating ties).
    fn pick_replica(&self, min_epoch: u64) -> Option<&ReplicaHandle> {
        let n = self.replicas.len();
        if n == 0 {
            return None;
        }
        let start = self.rotate.fetch_add(1, Ordering::Relaxed);
        let mut best: Option<(&ReplicaHandle, u64)> = None;
        for i in 0..n {
            let replica = &self.replicas[(start + i) % n];
            if replica.state.status.health() != ReplicaHealth::Healthy
                || replica.state.watermark.current() < min_epoch
            {
                continue;
            }
            let load = replica.state.outstanding.load(Ordering::Relaxed);
            if best.is_none_or(|(_, b)| load < b) {
                best = Some((replica, load));
            }
        }
        best.map(|(replica, _)| replica)
    }

    fn lease_read(&self, replica: &ReplicaHandle) -> RoutedSnapshot {
        replica.state.routed_reads.fetch_add(1, Ordering::Relaxed);
        let lease = ReadLease::acquire(&replica.state.outstanding);
        // Order matters: snapshot *after* the watermark check that got
        // us here — stores only move forward, so the snapshot's epoch
        // is at least the watermark the pick saw.
        RoutedSnapshot {
            target: RouteTarget::Engine(replica.state.snapshot()),
            origin: ReadOrigin::Replica(replica.state.id),
            _lease: Some(lease),
        }
    }

    fn primary_read(&self) -> RoutedSnapshot {
        self.primary_reads.fetch_add(1, Ordering::Relaxed);
        RoutedSnapshot::primary(self.primary.snapshot())
    }

    /// Point-in-time cluster metrics (schema `csag-cluster-metrics-v1`
    /// via [`ClusterMetrics::to_json`]).
    pub fn metrics(&self) -> ClusterMetrics {
        let primary_epoch = self.primary.published_epoch();
        ClusterMetrics {
            primary_epoch,
            records: self.records.load(Ordering::Relaxed),
            pinned_reads: self.pinned_reads.load(Ordering::Relaxed),
            unpinned_reads: self.unpinned_reads.load(Ordering::Relaxed),
            primary_reads: self.primary_reads.load(Ordering::Relaxed),
            pinned_waits: self.pinned_waits.load(Ordering::Relaxed),
            pinned_rejects: self.pinned_rejects.load(Ordering::Relaxed),
            replicas: self
                .replicas
                .iter()
                .map(|r| {
                    let watermark = r.state.watermark.current();
                    ReplicaMetrics {
                        id: r.state.id,
                        health: r.state.status.health(),
                        watermark,
                        lag: primary_epoch.saturating_sub(watermark),
                        routed_reads: r.state.routed_reads.load(Ordering::Relaxed),
                        outstanding: r.state.outstanding.load(Ordering::Relaxed),
                        applied: r.state.applied.load(Ordering::Relaxed),
                        apply_errors: r.state.apply_errors.load(Ordering::Relaxed),
                        degraded: r.state.status.degraded_marks(),
                        reseeded: r.state.reseeds.load(Ordering::Relaxed),
                    }
                })
                .collect(),
            remotes: self
                .remotes()
                .iter()
                .map(|m| {
                    let watermark = m.watermark.current();
                    RemoteReplicaMetrics {
                        name: m.name.clone(),
                        health: m.status.health(),
                        connected: m.connected.load(Ordering::Acquire),
                        watermark,
                        lag: primary_epoch.saturating_sub(watermark),
                        records_sent: m.records_sent.load(Ordering::Relaxed),
                        bytes_shipped: m.bytes_shipped.load(Ordering::Relaxed),
                        reseeds: m.snapshots_shipped.load(Ordering::Relaxed),
                        acks: m.acks.load(Ordering::Relaxed),
                        degraded: m.status.degraded_marks(),
                    }
                })
                .collect(),
            shards: Vec::new(),
        }
    }
}

impl ReadSource for Router {
    /// Cluster routing. Unpinned: least-loaded healthy replica that has
    /// caught up to the primary's current epoch, else the primary.
    /// Pinned to `E`: any healthy replica with watermark `>= E`, else
    /// the primary if it has published `E`, else a condvar wait on the
    /// primary's publish watch (a replica can never be ahead of the
    /// primary) bounded by `wait` — and only then the typed rejection.
    fn route_read(&self, pin: Option<u64>, wait: Duration) -> Result<RoutedSnapshot, CsagError> {
        match pin {
            None => {
                self.unpinned_reads.fetch_add(1, Ordering::Relaxed);
                let target = self.primary.published_epoch();
                match self.pick_replica(target) {
                    Some(replica) => Ok(self.lease_read(replica)),
                    None => Ok(self.primary_read()),
                }
            }
            Some(epoch) => {
                self.pinned_reads.fetch_add(1, Ordering::Relaxed);
                if let Some(replica) = self.pick_replica(epoch) {
                    return Ok(self.lease_read(replica));
                }
                // No caught-up replica: the primary serves any epoch it
                // has published; a future epoch waits for the publish.
                if self.primary.published_epoch() >= epoch {
                    return Ok(self.primary_read());
                }
                self.pinned_waits.fetch_add(1, Ordering::Relaxed);
                if self.primary.subscribe().wait_for(epoch, wait) {
                    // Published while we waited — replicas may have
                    // caught up too; prefer them to keep the primary free.
                    match self.pick_replica(epoch) {
                        Some(replica) => Ok(self.lease_read(replica)),
                        None => Ok(self.primary_read()),
                    }
                } else {
                    self.pinned_rejects.fetch_add(1, Ordering::Relaxed);
                    Err(CsagError::EpochUnavailable {
                        requested: epoch,
                        published: self.primary.published_epoch(),
                    })
                }
            }
        }
    }
}

impl Drop for Router {
    /// Shuts every replica down and joins its thread.
    fn drop(&mut self) {
        for replica in &self.replicas {
            replica.state.paused.store(false, Ordering::Relaxed);
            let _ = replica.tx.send(ReplicaMsg::Shutdown);
        }
        for replica in &mut self.replicas {
            if let Some(join) = replica.join.take() {
                let _ = join.join();
            }
        }
    }
}

/// Point-in-time view of one replica, inside [`ClusterMetrics`].
#[derive(Clone, Debug)]
pub struct ReplicaMetrics {
    /// Replica index (0-based).
    pub id: usize,
    /// Current lifecycle state.
    pub health: ReplicaHealth,
    /// Highest epoch this replica has published.
    pub watermark: u64,
    /// Fan-out lag: primary epoch minus this watermark.
    pub lag: u64,
    /// Reads the router has routed here.
    pub routed_reads: u64,
    /// Reads currently leased against this replica.
    pub outstanding: u64,
    /// Log records applied.
    pub applied: u64,
    /// Apply failures (induced or gap-detected).
    pub apply_errors: u64,
    /// Times this replica was marked degraded.
    pub degraded: u64,
    /// Times this replica was reseeded from the primary.
    pub reseeded: u64,
}

/// Point-in-time view of one *remote* replica (a follower process fed
/// over `csag-repl v1`), inside [`ClusterMetrics`].
#[derive(Clone, Debug)]
pub struct RemoteReplicaMetrics {
    /// The follower's self-declared name (the registry key).
    pub name: String,
    /// Current lifecycle state (acks drive healthy; drops and ack
    /// silence drive degraded; a snapshot in flight is reseeding).
    pub health: ReplicaHealth,
    /// `true` while a replication connection is attached.
    pub connected: bool,
    /// Highest epoch the follower has acked.
    pub watermark: u64,
    /// Replication lag: primary epoch minus the acked watermark.
    pub lag: u64,
    /// Live log records shipped over the current and past connections.
    pub records_sent: u64,
    /// Payload bytes shipped (snapshots + framed records).
    pub bytes_shipped: u64,
    /// Full snapshots shipped (each one is a reseed).
    pub reseeds: u64,
    /// Acks received.
    pub acks: u64,
    /// Times this member was marked degraded.
    pub degraded: u64,
}

/// Point-in-time cluster metrics ([`Router::metrics`]).
#[derive(Clone, Debug)]
pub struct ClusterMetrics {
    /// The primary's published epoch.
    pub primary_epoch: u64,
    /// Replication log records fanned out.
    pub records: u64,
    /// Reads that arrived with an epoch pin.
    pub pinned_reads: u64,
    /// Reads without a pin.
    pub unpinned_reads: u64,
    /// Reads the primary served (no caught-up replica, or no replicas).
    pub primary_reads: u64,
    /// Pinned reads that had to wait for a publish.
    pub pinned_waits: u64,
    /// Pinned reads rejected as [`CsagError::EpochUnavailable`].
    pub pinned_rejects: u64,
    /// Per-replica detail.
    pub replicas: Vec<ReplicaMetrics>,
    /// Per-remote-replica detail (followers in other processes).
    pub remotes: Vec<RemoteReplicaMetrics>,
    /// Per-shard detail (populated by
    /// [`crate::cluster::shard::ShardedRouter::metrics`]; empty for a
    /// plain replicated router).
    pub shards: Vec<ShardSectionMetrics>,
}

/// Point-in-time view of one shard, inside [`ClusterMetrics`].
#[derive(Clone, Debug)]
pub struct ShardSectionMetrics {
    /// Shard index (0-based).
    pub id: usize,
    /// Vertices this shard owns.
    pub owned: u64,
    /// Ghost vertices covered beyond the owned block (the halo).
    pub halo: u64,
    /// The shard primary's published epoch (lockstep with the journal).
    pub watermark: u64,
    /// Queries answered entirely by this shard (coverage certificate).
    pub local_hits: u64,
    /// Queries homed here whose candidate region crossed shards
    /// (scatter-gather + union re-peel).
    pub gathers: u64,
    /// Total wall-clock spent gathering and merging those queries,
    /// in milliseconds.
    pub merge_ms: f64,
}

impl ClusterMetrics {
    /// Serializes as one JSON object, schema `csag-cluster-metrics-v1`.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(512);
        s.push('{');
        push_kv(&mut s, "schema", &json_string("csag-cluster-metrics-v1"));
        s.push(',');
        push_kv(&mut s, "primary_epoch", &self.primary_epoch.to_string());
        s.push(',');
        push_kv(&mut s, "records", &self.records.to_string());
        s.push(',');
        push_kv(&mut s, "pinned_reads", &self.pinned_reads.to_string());
        s.push(',');
        push_kv(&mut s, "unpinned_reads", &self.unpinned_reads.to_string());
        s.push(',');
        push_kv(&mut s, "primary_reads", &self.primary_reads.to_string());
        s.push(',');
        push_kv(&mut s, "pinned_waits", &self.pinned_waits.to_string());
        s.push(',');
        push_kv(&mut s, "pinned_rejects", &self.pinned_rejects.to_string());
        s.push(',');
        push_key(&mut s, "replicas");
        s.push('[');
        for (i, r) in self.replicas.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('{');
            push_kv(&mut s, "id", &r.id.to_string());
            s.push(',');
            push_kv(&mut s, "health", &json_string(r.health.name()));
            s.push(',');
            push_kv(&mut s, "watermark", &r.watermark.to_string());
            s.push(',');
            push_kv(&mut s, "lag", &r.lag.to_string());
            s.push(',');
            push_kv(&mut s, "routed_reads", &r.routed_reads.to_string());
            s.push(',');
            push_kv(&mut s, "outstanding", &r.outstanding.to_string());
            s.push(',');
            push_kv(&mut s, "applied", &r.applied.to_string());
            s.push(',');
            push_kv(&mut s, "apply_errors", &r.apply_errors.to_string());
            s.push(',');
            push_kv(&mut s, "degraded", &r.degraded.to_string());
            s.push(',');
            push_kv(&mut s, "reseeded", &r.reseeded.to_string());
            s.push('}');
        }
        s.push(']');
        s.push(',');
        push_key(&mut s, "remotes");
        s.push('[');
        for (i, m) in self.remotes.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('{');
            push_kv(&mut s, "name", &json_string(&m.name));
            s.push(',');
            push_kv(&mut s, "health", &json_string(m.health.name()));
            s.push(',');
            push_kv(
                &mut s,
                "connected",
                if m.connected { "true" } else { "false" },
            );
            s.push(',');
            push_kv(&mut s, "watermark", &m.watermark.to_string());
            s.push(',');
            push_kv(&mut s, "lag", &m.lag.to_string());
            s.push(',');
            push_kv(&mut s, "records_sent", &m.records_sent.to_string());
            s.push(',');
            push_kv(&mut s, "bytes_shipped", &m.bytes_shipped.to_string());
            s.push(',');
            push_kv(&mut s, "reseeds", &m.reseeds.to_string());
            s.push(',');
            push_kv(&mut s, "acks", &m.acks.to_string());
            s.push(',');
            push_kv(&mut s, "degraded", &m.degraded.to_string());
            s.push('}');
        }
        s.push(']');
        s.push(',');
        push_key(&mut s, "shards");
        s.push('[');
        for (i, sh) in self.shards.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('{');
            push_kv(&mut s, "id", &sh.id.to_string());
            s.push(',');
            push_kv(&mut s, "owned", &sh.owned.to_string());
            s.push(',');
            push_kv(&mut s, "halo", &sh.halo.to_string());
            s.push(',');
            push_kv(&mut s, "watermark", &sh.watermark.to_string());
            s.push(',');
            push_kv(&mut s, "local_hits", &sh.local_hits.to_string());
            s.push(',');
            push_kv(&mut s, "gathers", &sh.gathers.to_string());
            s.push(',');
            push_kv(&mut s, "merge_ms", &json_f64(sh.merge_ms));
            s.push('}');
        }
        s.push(']');
        s.push('}');
        s
    }
}

// The router is shared across transport connections and writer threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Router>();
    assert_send_sync::<RoutedSnapshot>();
};
