//! The deterministic edge-cut partitioner and the per-update routing
//! table it maintains as the graph churns.
//!
//! A [`ShardPlan`] assigns every vertex an **owner** shard (BFS-ordered
//! contiguous blocks, so communities tend to land whole) and gives each
//! shard a **coverage set**: the owned block plus a halo of ghost
//! vertices within `halo` hops of it. A shard's edge set is every
//! global edge incident to its coverage set, which yields the invariant
//! the whole subsystem leans on:
//!
//! > **Coverage closure.** If shard `i` covers vertex `x`, shard `i`
//! > holds *every* global edge of `x` — so `x`'s degree, adjacency
//! > list, and triangle set on shard `i` are byte-identical to the
//! > global graph's.
//!
//! Every shard keeps the **full vertex set** (attributes replicated,
//! edges partitioned): attribute rows, token interning, and min-max
//! normalization evolve identically on every shard, so attribute
//! distances — the other half of every community score — never diverge.
//! Only adjacency is partial, and coverage says exactly where it is
//! total.
//!
//! Churn keeps the invariant, never the halo: `ShardPlan::route`
//! sends an edge insertion to every shard covering either endpoint, an
//! edge removal to all shards (a no-op where the edge is absent),
//! attribute changes and new vertices to all shards (new vertices are
//! covered only by their owner, assigned round-robin). Coverage is
//! never expanded after partitioning — the fast-path hit rate may decay
//! under heavy churn, but a covered region is always exact.

use crate::engine::GraphUpdate;
use csag_graph::{AttributedGraph, NodeId};
use std::collections::VecDeque;
use std::sync::Arc;

/// The partition: owner assignment plus per-shard coverage bitmaps.
/// Shared copy-on-write with published [`super::ClusterView`]s — a view
/// holds the `Arc`s its epoch saw; the next vertex addition clones.
#[derive(Clone, Debug)]
pub struct ShardPlan {
    shards: usize,
    halo: u32,
    /// `owner[v]`: the shard whose block holds `v`.
    owner: Arc<Vec<u32>>,
    /// `covered[i][v]`: shard `i` holds all of `v`'s edges.
    covered: Vec<Arc<Vec<bool>>>,
    /// Numeric dimensionality, for routing-time validity simulation.
    dims: usize,
}

/// One batch split along the plan: the per-shard sub-batches for the
/// longest prefix of the input that referential-integrity checks admit
/// (the same checks `MutableGraph::apply` runs, simulated ahead so the
/// fan-out ships exactly the prefix the journal will publish).
pub(crate) struct RoutedBatch {
    /// Sub-batch for each shard, in input order.
    pub per_shard: Vec<Vec<GraphUpdate>>,
    /// How many input updates are valid; `updates[valid_prefix]` is the
    /// update the journal's apply will reject (when `< updates.len()`).
    pub valid_prefix: usize,
    /// Owners assigned to vertices the prefix appends, in id order.
    pub new_vertex_owners: Vec<u32>,
}

impl ShardPlan {
    /// Partitions `g` into `shards` blocks with a ghost halo of
    /// `halo` hops. Deterministic: global BFS order (roots in id order,
    /// sorted adjacency) chopped into contiguous blocks of
    /// `ceil(n / shards)`.
    pub fn partition(g: &AttributedGraph, shards: usize, halo: u32) -> ShardPlan {
        assert!(shards >= 1, "a plan needs at least one shard");
        let n = g.n();
        let mut order = Vec::with_capacity(n);
        let mut seen = vec![false; n];
        let mut queue = VecDeque::new();
        for root in 0..n as NodeId {
            if seen[root as usize] {
                continue;
            }
            seen[root as usize] = true;
            queue.push_back(root);
            while let Some(v) = queue.pop_front() {
                order.push(v);
                for &w in g.neighbors(v) {
                    if !seen[w as usize] {
                        seen[w as usize] = true;
                        queue.push_back(w);
                    }
                }
            }
        }
        let block = n.div_ceil(shards.max(1)).max(1);
        let mut owner = vec![0u32; n];
        for (i, &v) in order.iter().enumerate() {
            owner[v as usize] = (i / block).min(shards - 1) as u32;
        }
        let covered = (0..shards)
            .map(|s| {
                let mut cov = vec![false; n];
                let mut frontier: VecDeque<(NodeId, u32)> = (0..n as NodeId)
                    .filter(|&v| owner[v as usize] == s as u32)
                    .map(|v| (v, 0))
                    .collect();
                for &(v, _) in &frontier {
                    cov[v as usize] = true;
                }
                while let Some((v, d)) = frontier.pop_front() {
                    if d == halo {
                        continue;
                    }
                    for &w in g.neighbors(v) {
                        if !cov[w as usize] {
                            cov[w as usize] = true;
                            frontier.push_back((w, d + 1));
                        }
                    }
                }
                Arc::new(cov)
            })
            .collect();
        ShardPlan {
            shards,
            halo,
            owner: Arc::new(owner),
            covered,
            dims: g.attrs().dims(),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The configured halo radius, in hops.
    pub fn halo(&self) -> u32 {
        self.halo
    }

    /// Vertices currently known to the plan.
    pub fn n(&self) -> usize {
        self.owner.len()
    }

    /// The shard owning `v` (`v` must be in range).
    pub fn owner(&self, v: NodeId) -> usize {
        self.owner[v as usize] as usize
    }

    /// Whether shard `s` covers `v` (holds all of `v`'s edges).
    pub fn covers(&self, s: usize, v: NodeId) -> bool {
        self.covered[s][v as usize]
    }

    /// Shard `s`'s coverage bitmap (shared with published views).
    pub(crate) fn coverage(&self, s: usize) -> Arc<Vec<bool>> {
        Arc::clone(&self.covered[s])
    }

    /// The owner table (shared with published views).
    pub(crate) fn owners(&self) -> Arc<Vec<u32>> {
        Arc::clone(&self.owner)
    }

    /// Vertices shard `s` owns.
    pub fn owned_count(&self, s: usize) -> usize {
        self.owner.iter().filter(|&&o| o == s as u32).count()
    }

    /// Ghost vertices shard `s` covers beyond its owned block.
    pub fn halo_count(&self, s: usize) -> usize {
        self.covered[s]
            .iter()
            .enumerate()
            .filter(|&(v, &c)| c && self.owner[v] != s as u32)
            .count()
    }

    /// Carves shard `s`'s graph out of the seed graph: the full vertex
    /// set with every edge not incident to the coverage set removed
    /// (through the same `MutableGraph` edit/snapshot path the stores
    /// use, so the result is a canonical build of exactly those rows).
    pub fn shard_graph(&self, g: &AttributedGraph, s: usize) -> AttributedGraph {
        let cov = &self.covered[s];
        let mut mg = csag_graph::MutableGraph::from_graph(g);
        for v in 0..g.n() as NodeId {
            for &w in g.neighbors(v) {
                if v < w && !cov[v as usize] && !cov[w as usize] {
                    mg.apply(&GraphUpdate::RemoveEdge { u: v, v: w })
                        .expect("removing an existing edge cannot fail");
                }
            }
        }
        mg.snapshot()
    }

    /// Splits `updates` into per-shard sub-batches, simulating the
    /// journal's referential-integrity checks so the fan-out carries
    /// exactly the prefix the journal will publish. Does **not** mutate
    /// the plan — call [`ShardPlan::commit`] with the result once the
    /// journal accepted the batch.
    pub(crate) fn route(&self, updates: &[GraphUpdate]) -> RoutedBatch {
        let mut per_shard: Vec<Vec<GraphUpdate>> = vec![Vec::new(); self.shards];
        let mut new_vertex_owners = Vec::new();
        // Validity simulation state: node count evolves within the
        // batch; new vertices are covered only by their owner.
        let mut n = self.owner.len();
        let mut valid_prefix = updates.len();
        'route: for (idx, update) in updates.iter().enumerate() {
            let in_range = |v: NodeId| (v as usize) < n;
            match update {
                GraphUpdate::AddEdge { u, v } => {
                    if !in_range(*u) || !in_range(*v) {
                        valid_prefix = idx;
                        break 'route;
                    }
                    for s in 0..self.shards {
                        if self.covers_evolving(s, *u, &new_vertex_owners)
                            || self.covers_evolving(s, *v, &new_vertex_owners)
                        {
                            per_shard[s].push(update.clone());
                        }
                    }
                }
                GraphUpdate::RemoveEdge { u, v } => {
                    if !in_range(*u) || !in_range(*v) {
                        valid_prefix = idx;
                        break 'route;
                    }
                    // Every shard covering an endpoint must drop the
                    // edge; shards holding it only as halo fringe must
                    // too. All shards is the sound superset (a no-op
                    // where the edge is absent).
                    for sub in &mut per_shard {
                        sub.push(update.clone());
                    }
                }
                GraphUpdate::AddVertex { numeric, .. } => {
                    if numeric.len() != self.dims {
                        valid_prefix = idx;
                        break 'route;
                    }
                    new_vertex_owners.push((n % self.shards) as u32);
                    n += 1;
                    for sub in &mut per_shard {
                        sub.push(update.clone());
                    }
                }
                GraphUpdate::SetAttributes { v, numeric, .. } => {
                    if !in_range(*v) || numeric.as_ref().is_some_and(|r| r.len() != self.dims) {
                        valid_prefix = idx;
                        break 'route;
                    }
                    for sub in &mut per_shard {
                        sub.push(update.clone());
                    }
                }
            }
        }
        RoutedBatch {
            per_shard,
            valid_prefix,
            new_vertex_owners,
        }
    }

    /// Coverage lookup that sees vertices the current batch appended.
    fn covers_evolving(&self, s: usize, v: NodeId, new_owners: &[u32]) -> bool {
        let base = self.owner.len();
        if (v as usize) < base {
            self.covered[s][v as usize]
        } else {
            new_owners[v as usize - base] == s as u32
        }
    }

    /// Records the vertices a journal-accepted prefix appended:
    /// copy-on-write extension of the owner table and coverage bitmaps
    /// (published views keep the `Arc`s of their epoch).
    pub(crate) fn commit(&mut self, routed: &RoutedBatch) {
        if routed.new_vertex_owners.is_empty() {
            return;
        }
        let owner = Arc::make_mut(&mut self.owner);
        for &o in &routed.new_vertex_owners {
            owner.push(o);
        }
        for (s, cov) in self.covered.iter_mut().enumerate() {
            let cov = Arc::make_mut(cov);
            for &o in &routed.new_vertex_owners {
                cov.push(o as usize == s);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csag_datasets::paper_examples::figure1_imdb;

    #[test]
    fn partition_is_deterministic_and_total() {
        let (g, _) = figure1_imdb();
        let a = ShardPlan::partition(&g, 3, 1);
        let b = ShardPlan::partition(&g, 3, 1);
        for v in 0..g.n() as NodeId {
            assert_eq!(a.owner(v), b.owner(v));
            assert!(a.owner(v) < 3);
            assert!(a.covers(a.owner(v), v), "owner always covers");
        }
        let total: usize = (0..3).map(|s| a.owned_count(s)).sum();
        assert_eq!(total, g.n(), "every vertex owned exactly once");
    }

    #[test]
    fn coverage_closure_holds_on_shard_graphs() {
        let (g, _) = figure1_imdb();
        for shards in 1..=4 {
            for halo in 0..=2 {
                let plan = ShardPlan::partition(&g, shards, halo);
                for s in 0..shards {
                    let sg = plan.shard_graph(&g, s);
                    assert_eq!(sg.n(), g.n(), "full vertex set everywhere");
                    for v in 0..g.n() as NodeId {
                        if plan.covers(s, v) {
                            assert_eq!(
                                sg.neighbors(v),
                                g.neighbors(v),
                                "covered vertex {v} must keep its whole adjacency on shard {s}"
                            );
                        } else {
                            // Partial at best, and never an invented edge.
                            for &w in sg.neighbors(v) {
                                assert!(g.has_edge(v, w));
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn one_shard_owns_and_covers_everything() {
        let (g, _) = figure1_imdb();
        let plan = ShardPlan::partition(&g, 1, 0);
        assert_eq!(plan.owned_count(0), g.n());
        assert_eq!(plan.halo_count(0), 0);
        let sg = plan.shard_graph(&g, 0);
        assert_eq!(sg.m(), g.m());
    }

    #[test]
    fn routing_ships_removals_everywhere_and_insertions_to_coverers() {
        let (g, _) = figure1_imdb();
        let plan = ShardPlan::partition(&g, 3, 1);
        let (u, v) = (0 as NodeId, (g.n() - 1) as NodeId);
        let routed = plan.route(&[
            GraphUpdate::AddEdge { u, v },
            GraphUpdate::RemoveEdge { u: v, v: u },
        ]);
        assert_eq!(routed.valid_prefix, 2);
        for s in 0..3 {
            let has_add = routed.per_shard[s]
                .iter()
                .any(|up| matches!(up, GraphUpdate::AddEdge { .. }));
            assert_eq!(has_add, plan.covers(s, u) || plan.covers(s, v));
            assert!(routed.per_shard[s]
                .iter()
                .any(|up| matches!(up, GraphUpdate::RemoveEdge { .. })));
        }
    }

    #[test]
    fn routing_stops_at_the_first_invalid_update() {
        let (g, _) = figure1_imdb();
        let n = g.n() as NodeId;
        let mut plan = ShardPlan::partition(&g, 2, 1);
        let routed = plan.route(&[
            GraphUpdate::AddVertex {
                tokens: vec!["t".into()],
                numeric: vec![0.0; g.attrs().dims()],
            },
            // Valid only because the vertex above precedes it.
            GraphUpdate::AddEdge { u: n, v: 0 },
            // Out of range even after the append: invalid.
            GraphUpdate::AddEdge { u: n + 1, v: 0 },
            GraphUpdate::RemoveEdge { u: 0, v: 1 },
        ]);
        assert_eq!(routed.valid_prefix, 2);
        assert_eq!(routed.new_vertex_owners.len(), 1);
        for sub in &routed.per_shard {
            assert!(sub.len() <= 2, "nothing past the invalid update ships");
        }
        let before = plan.n();
        plan.commit(&routed);
        assert_eq!(plan.n(), before + 1);
        let owner = plan.owner(n);
        assert!(plan.covers(owner, n), "new vertex covered at its owner");
        assert_eq!(
            (0..2).filter(|&s| plan.covers(s, n)).count(),
            1,
            "and only at its owner"
        );
    }
}
