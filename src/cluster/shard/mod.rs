//! `csag::cluster::shard` — partitioned graph stores behind a
//! scatter-gather query router.
//!
//! A [`ShardedRouter`] splits one logical graph across `N` shard
//! stores and presents them through the same [`ReadSource`] seam the
//! single store and the replicated [`Router`]
//! implement — the scheduler never learns that shards exist. The
//! guarantee is the one the rest of the codebase is built on, extended
//! across partitions: **a sharded cluster answers every query
//! byte-identical to a single store at the same epoch** — results,
//! certificates, and error messages alike.
//!
//! The moving parts, each in its own module:
//!
//! * [`partition`] — the deterministic edge-cut partitioner: BFS-block
//!   vertex ownership, per-shard ghost halos of configurable radius,
//!   and the per-update routing table ([`ShardPlan`]).
//! * [`planner`] — per-query routing: runs a query shard-local only
//!   under a coverage *certificate* proving the method's whole read
//!   footprint is resident; everything else scatter-gathers.
//! * [`gather`] — the spill path: collects the candidate region's
//!   fragments from the owning shards and re-peels the union.
//! * [`merge`] — conservative certificate combination (error bound =
//!   max, confidence = min): a merged certificate never overclaims.
//!
//! # The write path and the cluster epoch
//!
//! Writes go through [`ShardedRouter::apply`], which keeps a
//! **journal** — a full [`GraphStore`] of the global graph (and the
//! WAL carrier under `--wal`). Each batch is routed into per-shard
//! sub-batches along the plan (`ShardPlan::route`), applied to the
//! journal (which owns validation, durability, and epoch numbering),
//! then fanned out to every shard's own [`Router`] — reusing the
//! replication log fan-out, so `--shards` composes with `--replicas`.
//! Every shard receives every batch (possibly empty), keeping all
//! shard stores in **epoch lockstep** with the journal.
//!
//! The **cluster epoch** is published last, on a separate watermark,
//! only once every touched shard has applied the batch. Pinned reads
//! gate on this cluster watermark — never on the journal's own (which
//! necessarily advances first) — so a read pinned to `E` can only see
//! a view whose *every* shard snapshot is at `E`.
//!
//! # Reads
//!
//! A routed read hands the scheduler an immutable [`ClusterView`]: the
//! per-shard snapshots pinned at one cluster epoch, plus the ownership
//! and coverage tables that were current when it published. Queries
//! then run through the planner against that view — epoch consistency
//! is by construction, not by coordination.

pub mod gather;
pub mod merge;
pub mod partition;
pub mod planner;

pub use partition::ShardPlan;

use crate::cluster::router::{ReadSource, RoutedSnapshot, Router};
use crate::cluster::{ClusterMetrics, ShardSectionMetrics};
use crate::durability::{RecoveryReport, WalError};
use crate::engine::store::{EpochCell, Snapshot};
use crate::engine::{ApplyError, CsagError, GraphStore, GraphUpdate, UpdateReport};
use csag_graph::{AttributedGraph, NodeId};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError, RwLock};
use std::time::Duration;

/// One published cluster epoch: the journal snapshot (global metadata
/// — its engine never serves community queries), every shard's
/// snapshot pinned at the same epoch, and the ownership/coverage
/// tables that were current at publish. Immutable; readers hold it for
/// the lifetime of a query.
pub struct ClusterView {
    epoch: u64,
    journal: Snapshot,
    shards: Vec<Snapshot>,
    owner: Arc<Vec<u32>>,
    covered: Vec<Arc<Vec<bool>>>,
    /// Whole-graph re-assembly from the shards, built lazily for the
    /// compatibility [`RoutedSnapshot::snapshot`] path.
    assembly: OnceLock<Snapshot>,
}

impl ClusterView {
    /// The cluster epoch this view pins (every shard snapshot agrees).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The journal's snapshot: the global graph and decompositions the
    /// planner routes with.
    pub fn journal(&self) -> &Snapshot {
        &self.journal
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Shard `s`'s pinned snapshot.
    pub fn shard(&self, s: usize) -> &Snapshot {
        &self.shards[s]
    }

    /// The shard owning vertex `v`.
    pub fn owner(&self, v: NodeId) -> usize {
        self.owner[v as usize] as usize
    }

    /// Whether shard `s` covers `v` (holds all of `v`'s edges).
    pub fn covers(&self, s: usize, v: NodeId) -> bool {
        self.covered[s][v as usize]
    }

    /// Shard `s`'s coverage bitmap.
    pub(crate) fn coverage(&self, s: usize) -> &[bool] {
        &self.covered[s]
    }

    /// Vertices shard `s` owns.
    fn owned_count(&self, s: usize) -> usize {
        self.owner.iter().filter(|&&o| o == s as u32).count()
    }

    /// Ghost vertices shard `s` covers beyond its owned block.
    fn halo_count(&self, s: usize) -> usize {
        self.covered[s]
            .iter()
            .enumerate()
            .filter(|&(v, &c)| c && self.owner[v] != s as u32)
            .count()
    }

    /// The whole graph re-assembled from the shards, built at most
    /// once per view.
    pub(crate) fn assembly(&self) -> &Snapshot {
        self.assembly.get_or_init(|| gather::assemble_full(self))
    }
}

/// Per-shard routing counters, shared between the router and every
/// routed read it hands out.
pub(crate) struct ShardStats {
    local_hits: Vec<AtomicU64>,
    gathers: Vec<AtomicU64>,
    merge_nanos: Vec<AtomicU64>,
}

impl ShardStats {
    fn new(shards: usize) -> Arc<ShardStats> {
        Arc::new(ShardStats {
            local_hits: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            gathers: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            merge_nanos: (0..shards).map(|_| AtomicU64::new(0)).collect(),
        })
    }

    pub(crate) fn record_local(&self, shard: usize) {
        self.local_hits[shard].fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_gather(&self, home: usize, elapsed: Duration) {
        self.gathers[home].fetch_add(1, Ordering::Relaxed);
        self.merge_nanos[home].fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }
}

/// Partitioned graph stores behind one write path and one
/// [`ReadSource`]. See the [module docs](self).
pub struct ShardedRouter {
    /// The global store: validation, durability (WAL), and epoch
    /// numbering live here. Apply through [`ShardedRouter::apply`],
    /// never directly.
    journal: Arc<GraphStore>,
    /// One replication router per shard (so `--shards` composes with
    /// `--replicas`: each shard primary fans its log to its replicas).
    shards: Vec<Router>,
    /// The evolving partition/routing table.
    plan: Mutex<ShardPlan>,
    /// The last published view.
    view: RwLock<Arc<ClusterView>>,
    /// The cluster-epoch watermark: published only after every shard
    /// applied. Pinned reads gate here.
    watch: Arc<EpochCell>,
    /// Serializes route + journal-apply + fan-out + publish.
    write: Mutex<()>,
    stats: Arc<ShardStats>,
    records: AtomicU64,
    pinned_reads: AtomicU64,
    unpinned_reads: AtomicU64,
    pinned_waits: AtomicU64,
    pinned_rejects: AtomicU64,
}

impl ShardedRouter {
    /// Partitions `graph` into `shards` shard stores (ghost halo of
    /// `halo` hops), each fronted by a [`Router`] with
    /// `replicas_per_shard` replicas.
    pub fn over_graph(
        graph: AttributedGraph,
        shards: usize,
        halo: u32,
        replicas_per_shard: usize,
    ) -> Self {
        ShardedRouter::from_journal(
            Arc::new(GraphStore::new(graph)),
            shards,
            halo,
            replicas_per_shard,
        )
    }

    /// [`ShardedRouter::over_graph`] with a WAL-backed journal: every
    /// batch is durably logged (globally, once) before it fans out to
    /// any shard.
    ///
    /// # Errors
    /// [`WalError`] when the log directory cannot be initialized.
    pub fn with_wal(
        graph: AttributedGraph,
        shards: usize,
        halo: u32,
        replicas_per_shard: usize,
        dir: impl AsRef<Path>,
    ) -> Result<Self, WalError> {
        let journal = GraphStore::with_wal(graph, dir)?;
        Ok(ShardedRouter::from_journal(
            Arc::new(journal),
            shards,
            halo,
            replicas_per_shard,
        ))
    }

    /// Rebuilds the journal from a WAL directory and re-partitions the
    /// recovered graph. The partition is recomputed at boot — it is a
    /// performance layout, not state, so it owes the log nothing.
    ///
    /// # Errors
    /// [`WalError`] when the directory is uninitialized or corrupt
    /// beyond what a crash can explain.
    pub fn recover(
        dir: impl AsRef<Path>,
        shards: usize,
        halo: u32,
        replicas_per_shard: usize,
    ) -> Result<(Self, RecoveryReport), WalError> {
        let (journal, report) = GraphStore::recover(dir)?;
        Ok((
            ShardedRouter::from_journal(Arc::new(journal), shards, halo, replicas_per_shard),
            report,
        ))
    }

    /// Fronts an existing journal store with freshly carved shards.
    pub fn from_journal(
        journal: Arc<GraphStore>,
        shards: usize,
        halo: u32,
        replicas_per_shard: usize,
    ) -> Self {
        let snap = journal.snapshot();
        let g = snap.engine().graph();
        let plan = ShardPlan::partition(g, shards, halo);
        let shard_routers: Vec<Router> = (0..shards)
            .map(|s| {
                let store = GraphStore::from_arc_at(Arc::new(plan.shard_graph(g, s)), snap.epoch());
                Router::new(Arc::new(store), replicas_per_shard)
            })
            .collect();
        let view = ShardedRouter::build_view(&snap, &plan, &shard_routers);
        let watch = EpochCell::new(snap.epoch());
        let stats = ShardStats::new(shards);
        ShardedRouter {
            journal,
            shards: shard_routers,
            plan: Mutex::new(plan),
            view: RwLock::new(Arc::new(view)),
            watch,
            write: Mutex::new(()),
            stats,
            records: AtomicU64::new(0),
            pinned_reads: AtomicU64::new(0),
            unpinned_reads: AtomicU64::new(0),
            pinned_waits: AtomicU64::new(0),
            pinned_rejects: AtomicU64::new(0),
        }
    }

    fn build_view(journal: &Snapshot, plan: &ShardPlan, shards: &[Router]) -> ClusterView {
        ClusterView {
            epoch: journal.epoch(),
            journal: journal.clone(),
            shards: shards.iter().map(|r| r.primary().snapshot()).collect(),
            owner: plan.owners(),
            covered: (0..plan.shards()).map(|s| plan.coverage(s)).collect(),
            assembly: OnceLock::new(),
        }
    }

    /// The journal store (the global graph; reads through it bypass
    /// the shards entirely — apply through [`ShardedRouter::apply`],
    /// never directly, or the shards will permanently lag).
    pub fn journal(&self) -> &Arc<GraphStore> {
        &self.journal
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The configured halo radius, in hops.
    pub fn halo(&self) -> u32 {
        self.plan
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .halo()
    }

    /// The published **cluster** epoch: the highest epoch every shard
    /// has applied. Trails the journal's own watermark by exactly the
    /// in-flight fan-out.
    pub fn epoch(&self) -> u64 {
        self.watch.watch().current()
    }

    /// The last published view.
    pub fn view(&self) -> Arc<ClusterView> {
        Arc::clone(&self.view.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// The cluster write path: routes the batch along the plan, applies
    /// it to the journal (which owns validation, durability, and epoch
    /// numbering), fans the per-shard sub-batches out through every
    /// shard's router, and only then publishes the cluster epoch and
    /// the new [`ClusterView`].
    ///
    /// # Errors
    /// Exactly [`GraphStore::apply`]'s errors, byte-for-byte. An
    /// erroneous batch ([`ApplyError::Graph`]) still publishes its
    /// applied prefix — the routing pre-simulates the journal's
    /// validity checks so each shard receives exactly that prefix's
    /// sub-batch. A durability rejection applied nothing anywhere: no
    /// fan-out, no cluster epoch.
    pub fn apply(&self, updates: &[GraphUpdate]) -> Result<UpdateReport, ApplyError> {
        let _guard = self.write.lock().unwrap_or_else(PoisonError::into_inner);
        let mut plan = self.plan.lock().unwrap_or_else(PoisonError::into_inner);
        let routed = plan.route(updates);
        let outcome = self.journal.apply(updates);
        if matches!(outcome, Err(ApplyError::DurabilityUnavailable { .. })) {
            // Nothing was applied or logged: the plan is untouched and
            // no shard may hear about the batch.
            return outcome;
        }
        debug_assert!(
            match &outcome {
                Ok(_) => routed.valid_prefix == updates.len(),
                Err(_) => routed.valid_prefix < updates.len(),
            },
            "routing's validity simulation must agree with the journal's checks"
        );
        plan.commit(&routed);
        self.records.fetch_add(1, Ordering::Relaxed);
        let snap = self.journal.snapshot();
        for (router, sub) in self.shards.iter().zip(&routed.per_shard) {
            // Sub-batches carry only the journal-validated prefix, and
            // shard stores are WAL-less, so a rejection here is an
            // invariant violation — fail loudly over diverging quietly.
            let _ = router
                .apply(sub)
                .unwrap_or_else(|e| panic!("routed sub-batch must apply cleanly: {e:?}"));
            debug_assert_eq!(
                router.epoch(),
                snap.epoch(),
                "shards advance in epoch lockstep with the journal"
            );
        }
        let view = Arc::new(ShardedRouter::build_view(&snap, &plan, &self.shards));
        *self.view.write().unwrap_or_else(PoisonError::into_inner) = view;
        drop(plan);
        // Publish last: a pinned read woken by this sees a view whose
        // every shard snapshot is at the published epoch.
        self.watch.publish(snap.epoch());
        outcome
    }

    /// Point-in-time cluster metrics: the shared schema with a
    /// populated per-shard section (and no replica/remote sections —
    /// each shard's own router tracks those).
    pub fn metrics(&self) -> ClusterMetrics {
        let view = self.view();
        ClusterMetrics {
            primary_epoch: self.epoch(),
            records: self.records.load(Ordering::Relaxed),
            pinned_reads: self.pinned_reads.load(Ordering::Relaxed),
            unpinned_reads: self.unpinned_reads.load(Ordering::Relaxed),
            primary_reads: 0,
            pinned_waits: self.pinned_waits.load(Ordering::Relaxed),
            pinned_rejects: self.pinned_rejects.load(Ordering::Relaxed),
            replicas: Vec::new(),
            remotes: Vec::new(),
            shards: (0..self.shards.len())
                .map(|s| ShardSectionMetrics {
                    id: s,
                    owned: view.owned_count(s) as u64,
                    halo: view.halo_count(s) as u64,
                    watermark: self.shards[s].epoch(),
                    local_hits: self.stats.local_hits[s].load(Ordering::Relaxed),
                    gathers: self.stats.gathers[s].load(Ordering::Relaxed),
                    merge_ms: self.stats.merge_nanos[s].load(Ordering::Relaxed) as f64 / 1e6,
                })
                .collect(),
        }
    }
}

impl ReadSource for ShardedRouter {
    /// Sharded routing: every read gets the last published
    /// [`ClusterView`] (all shard snapshots at one cluster epoch). A
    /// read pinned to an unpublished epoch waits on the **cluster**
    /// watermark — the journal publishing first is not enough; every
    /// shard must have applied.
    fn route_read(&self, pin: Option<u64>, wait: Duration) -> Result<RoutedSnapshot, CsagError> {
        match pin {
            None => {
                self.unpinned_reads.fetch_add(1, Ordering::Relaxed);
                Ok(RoutedSnapshot::sharded(
                    self.view(),
                    Arc::clone(&self.stats),
                ))
            }
            Some(epoch) => {
                self.pinned_reads.fetch_add(1, Ordering::Relaxed);
                let view = self.view();
                if view.epoch() >= epoch {
                    return Ok(RoutedSnapshot::sharded(view, Arc::clone(&self.stats)));
                }
                self.pinned_waits.fetch_add(1, Ordering::Relaxed);
                if self.watch.watch().wait_for(epoch, wait) {
                    Ok(RoutedSnapshot::sharded(
                        self.view(),
                        Arc::clone(&self.stats),
                    ))
                } else {
                    self.pinned_rejects.fetch_add(1, Ordering::Relaxed);
                    Err(CsagError::EpochUnavailable {
                        requested: epoch,
                        published: self.epoch(),
                    })
                }
            }
        }
    }
}

// Shared across transport connections and writer threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ShardedRouter>();
    assert_send_sync::<ClusterView>();
};
