//! The scatter-gather spill path: when a candidate region is not
//! provably confined to one shard's coverage, the planner collects the
//! region's edge fragments from every owning shard, re-builds the
//! union, and re-peels the query on it.
//!
//! Soundness rests on ownership totality: every vertex is covered by
//! its owner, so scanning `v`'s adjacency *at its owner's shard* reads
//! `v`'s complete global edge list. A cross-shard BFS from `q` that
//! always expands through the owner therefore reconstructs `q`'s
//! entire connected component exactly — and every community method is
//! connectivity-confined (peels, seeds, and samples never leave `q`'s
//! component), so the union answers byte-identically to the global
//! store. The union engine is seeded with the journal's *global* core
//! decomposition, keeping precheck messages (which quote global core
//! numbers) identical too.

use super::merge;
use super::ClusterView;
use crate::engine::query::CommunityQuery;
use crate::engine::store::Snapshot;
use crate::engine::{CommunityResult, CsagError, Engine, GraphUpdate};
use csag_graph::{MutableGraph, NodeId, QueryWorkspace};
use std::sync::Arc;

/// Re-builds the full global graph from the shards alone (no journal
/// edges): shard 0's carve plus every vertex's owner-shard adjacency.
/// This is the view's lazy whole-graph assembly — the compatibility
/// path behind [`crate::cluster::RoutedSnapshot::snapshot`] — and a
/// standing proof that the shards collectively hold every edge.
pub(crate) fn assemble_full(view: &ClusterView) -> Snapshot {
    let journal = view.journal().engine();
    let n = journal.graph().n();
    let mut mg = MutableGraph::from_graph(view.shard(0).engine().graph());
    for v in 0..n as NodeId {
        let owner = view.owner(v);
        for &w in view.shard(owner).engine().graph().neighbors(v) {
            if v < w && !mg.has_edge(v, w) {
                mg.apply(&GraphUpdate::AddEdge { u: v, v: w })
                    .expect("both endpoints exist on every shard");
            }
        }
    }
    Snapshot::from_engine(Arc::new(union_engine(view, mg.snapshot())))
}

/// Gathers `q`'s connected component across the shards and re-runs the
/// query on the union: starting from the home shard's carve, a BFS
/// that reads each popped vertex's adjacency at its *owner* shard adds
/// every missing component edge. Returns the union result with its
/// fragment certificates conservatively merged
/// ([`merge::merge_certificates`] — an identity for the single
/// re-peeled union, so the spill path never perturbs certificate
/// bytes).
pub(crate) fn run(
    view: &ClusterView,
    query: &CommunityQuery,
    ws: &mut QueryWorkspace,
) -> Result<CommunityResult, CsagError> {
    let q = query.q;
    let home = view.owner(q);
    let mut mg = MutableGraph::from_graph(view.shard(home).engine().graph());
    let n = mg.n();
    let mut in_component = vec![false; n];
    let mut stack = vec![q];
    in_component[q as usize] = true;
    while let Some(v) = stack.pop() {
        let owner = view.owner(v);
        // The owner covers v, so this is v's complete global adjacency.
        for &w in view.shard(owner).engine().graph().neighbors(v) {
            if !mg.has_edge(v, w) {
                mg.apply(&GraphUpdate::AddEdge { u: v, v: w })
                    .expect("both endpoints exist on every shard");
            }
            if !in_component[w as usize] {
                in_component[w as usize] = true;
                stack.push(w);
            }
        }
    }
    let engine = union_engine(view, mg.snapshot());
    let mut result = engine.run_with_workspace(query, ws)?;
    result.certificate = merge::merge_certificates(&[result.certificate]);
    Ok(result)
}

/// Wraps a gathered union graph in an engine at the view's epoch,
/// seeded with the journal's global core decomposition (and trussness,
/// when some routing decision already paid for it): precheck messages
/// quote global numbers, exactly as a single store would.
fn union_engine(view: &ClusterView, graph: csag_graph::AttributedGraph) -> Engine {
    let journal = view.journal().engine();
    Engine::from_store_parts(
        Arc::new(graph),
        view.epoch(),
        journal.coreness().to_vec(),
        journal.trussness_if_computed().cloned(),
        Vec::new(),
    )
}
