//! The query planner: decides, per [`CommunityQuery`], whether the
//! owning shard can answer alone or the candidate region crosses a
//! shard boundary and must be scatter-gathered.
//!
//! The contract is absolute: a sharded cluster answers **byte-identical
//! to a single store** for every query — results, certificates, and
//! error messages alike. Routing is therefore proof-driven, never
//! heuristic: a query runs shard-local only when the planner has
//! *certified* that the method's entire read footprint lies inside the
//! home shard's coverage (where shard adjacency equals global
//! adjacency). Anything short of a proof takes the gather path, which
//! is always correct and merely slower.
//!
//! Three certificates are in play, matched to how the methods read the
//! graph:
//!
//! * **Pessimistic peel** (exact and the deterministic baselines):
//!   peel the home shard to the `k`-core, but treat uncovered vertices
//!   as unpeelable — their shard degree is a lower bound, so removing
//!   them could be wrong, while *keeping* them only enlarges the
//!   result. The surviving superset contains the true global `k`-core;
//!   if `q`'s component in it is fully covered, that component *is*
//!   the global maximal community region, entirely resident.
//! * **Growth replay** (SEA): re-run the best-first neighborhood
//!   growth on the shard. The growth reads only collected nodes'
//!   adjacency, so if every collected node is covered the sampled
//!   population `G_q` is exact.
//! * **Seed replay** (LocATC): re-run the bounded BFS seed; the search
//!   never leaves the seed-induced subgraph.
//!
//! Screens come first: the engine's precheck rejections quote *global*
//! core/trussness numbers, so a query the global screen rejects may
//! run locally only when the shard's screen fires with the very same
//! numbers — otherwise it gathers just to reproduce the right error
//! bytes. Never overclaim extends to error messages.

use super::{gather, ClusterView, ShardStats};
use crate::engine::query::CommunityQuery;
use crate::engine::{CommunityResult, CsagError, Method};
use csag_core::distance::QueryDistances;
use csag_core::sea::grow_neighborhood;
use csag_decomp::CommunityModel;
use csag_graph::{AttributedGraph, NodeId, QueryWorkspace};
use std::time::Instant;

/// Where one query runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Decision {
    /// Fully covered by the home shard: runs there, touching one store.
    Local { shard: usize },
    /// Crosses coverage: scatter-gather the region and re-peel the
    /// union (`home` is the shard charged with the merge).
    Gather { home: usize },
}

/// Plans and runs one query against a published cluster view.
pub(crate) fn execute(
    view: &ClusterView,
    stats: &ShardStats,
    query: &CommunityQuery,
    ws: &mut QueryWorkspace,
) -> Result<CommunityResult, CsagError> {
    match decide(view, query) {
        Decision::Local { shard } => {
            stats.record_local(shard);
            view.shard(shard).engine().run_with_workspace(query, ws)
        }
        Decision::Gather { home } => {
            let t = Instant::now();
            let result = gather::run(view, query, ws);
            stats.record_gather(home, t.elapsed());
            result
        }
    }
}

/// The routing decision (see the module docs for the certificates).
pub(crate) fn decide(view: &ClusterView, query: &CommunityQuery) -> Decision {
    let journal = view.journal().engine();
    let n = journal.graph().n();
    let q = query.q;
    // Out-of-range query nodes and malformed parameters are rejected
    // before any adjacency is read — every engine produces the same
    // bytes, so the cheapest shard answers.
    if (q as usize) >= n {
        return Decision::Local { shard: 0 };
    }
    let home = view.owner(q);
    if query.validate().is_err() {
        return Decision::Local { shard: home };
    }
    let local = Decision::Local { shard: home };
    let spill = Decision::Gather { home };
    let sh = view.shard(home).engine();
    let g_core = journal.coreness()[q as usize];
    let s_core = sh.coreness()[q as usize];
    match query.model {
        CommunityModel::KCore => {
            if g_core < query.k {
                // Globally impossible: the rejection quotes the global
                // core number, so local only if the shard agrees on it.
                return if s_core == g_core { local } else { spill };
            }
            if s_core < query.k {
                // Globally answerable but the shard's screen would
                // fire: the carve split the community.
                return spill;
            }
        }
        CommunityModel::KTruss => {
            let needed_core = query.k.saturating_sub(1);
            if g_core < needed_core {
                return if s_core == g_core { local } else { spill };
            }
            let g_truss = journal.node_trussness()[q as usize];
            if g_truss < query.k {
                // The global trussness screen fires; the shard must
                // clear the core screen and quote the same trussness.
                return if s_core >= needed_core && sh.node_trussness()[q as usize] == g_truss {
                    local
                } else {
                    spill
                };
            }
            if s_core < needed_core || sh.node_trussness()[q as usize] < query.k {
                return spill;
            }
        }
    }
    let covered = view.coverage(home);
    let confined = match query.method {
        // Rejected at dispatch, after the screens, before any graph
        // read — identical bytes from any screen-passing engine.
        Method::SeaHetero => true,
        Method::Exact | Method::Acq | Method::Vac | Method::EVac => {
            let peel_k = match query.model {
                CommunityModel::KCore => query.k,
                CommunityModel::KTruss => query.k.saturating_sub(1),
            };
            peel_confined(sh.graph(), covered, q, peel_k)
        }
        Method::Atc => csag_baselines::local_seed(sh.graph(), q)
            .iter()
            .all(|&v| covered[v as usize]),
        Method::Sea | Method::SeaSizeBounded => grow_confined(sh.graph(), covered, query, n),
    };
    if confined {
        local
    } else {
        spill
    }
}

/// The pessimistic-peel certificate: `true` iff `q`'s component in the
/// only-covered-vertices-peelable `k`-core of the home shard is fully
/// covered (and therefore equals the global region, see module docs).
fn peel_confined(g: &AttributedGraph, covered: &[bool], q: NodeId, k: u32) -> bool {
    let n = g.n();
    let mut deg: Vec<u32> = (0..n as NodeId)
        .map(|v| g.neighbors(v).len() as u32)
        .collect();
    let mut removed = vec![false; n];
    let mut stack: Vec<NodeId> = (0..n as NodeId)
        .filter(|&v| covered[v as usize] && deg[v as usize] < k)
        .collect();
    for &v in &stack {
        removed[v as usize] = true;
    }
    while let Some(v) = stack.pop() {
        for &w in g.neighbors(v) {
            if removed[w as usize] {
                continue;
            }
            deg[w as usize] -= 1;
            // `+ 1 == k` fires exactly once, at the crossing.
            if covered[w as usize] && deg[w as usize] + 1 == k {
                removed[w as usize] = true;
                stack.push(w);
            }
        }
    }
    if removed[q as usize] {
        return false;
    }
    // Walk q's surviving component; any uncovered member means the
    // region (or our knowledge of it) crosses the shard boundary.
    let mut seen = vec![false; n];
    seen[q as usize] = true;
    let mut frontier = vec![q];
    while let Some(v) = frontier.pop() {
        if !covered[v as usize] {
            return false;
        }
        for &w in g.neighbors(v) {
            if !removed[w as usize] && !seen[w as usize] {
                seen[w as usize] = true;
                frontier.push(w);
            }
        }
    }
    true
}

/// The SEA growth-replay certificate: `true` iff the best-first
/// neighborhood growth, replayed on the home shard, collects only
/// covered nodes — making the sampled population `G_q` exact.
fn grow_confined(g: &AttributedGraph, covered: &[bool], query: &CommunityQuery, n: usize) -> bool {
    let params = query.sea_params();
    let dist = QueryDistances::new(query.q, n, query.distance_params());
    let min_gq = csag_stats::min_population_size(
        params.min_members(),
        n,
        params.hoeffding_epsilon,
        1.0 - params.hoeffding_confidence,
    );
    grow_neighborhood(g, query.q, min_gq, &dist)
        .iter()
        .all(|&v| covered[v as usize])
}
