//! Conservative certificate combination for scatter-gathered answers.
//!
//! When a candidate region spills across shards, the gather path
//! re-peels the union and each contributing fragment arrives with its
//! own [`AccuracyCertificate`] (or none — heuristic baselines certify
//! nothing). The merged certificate may **never overclaim**: a client
//! reading it must be able to trust it no matter how many shards the
//! answer crossed. So every field combines in its pessimistic
//! direction:
//!
//! * `certified` — AND: the union is certified only if every fragment
//!   was.
//! * `error_bound` — max: the union's error is at best the worst
//!   fragment's.
//! * `confidence` — min: a conjunction of guarantees holds with at
//!   most the weakest one's confidence.
//! * `moe` — max: interval half-widths do not shrink by union.
//!
//! A missing fragment certificate poisons the merge to `None` (an
//! uncertified fragment cannot be laundered into a certified union),
//! and folding a **single** fragment is the identity — the common
//! gather case (one re-peeled union result) keeps its certificate
//! byte-identical to the single-store run.

use crate::engine::AccuracyCertificate;

/// Conservatively combines two certificates (see the module docs for
/// the per-field directions).
pub fn combine(a: AccuracyCertificate, b: AccuracyCertificate) -> AccuracyCertificate {
    AccuracyCertificate {
        certified: a.certified && b.certified,
        error_bound: a.error_bound.max(b.error_bound),
        confidence: a.confidence.min(b.confidence),
        moe: a.moe.max(b.moe),
    }
}

/// Folds fragment certificates into the union's certificate. Empty
/// input and any `None` fragment yield `None`; a single `Some`
/// fragment is returned unchanged (identity — the certificate a lone
/// re-peeled union earned is exactly the certificate reported).
pub fn merge_certificates(
    fragments: &[Option<AccuracyCertificate>],
) -> Option<AccuracyCertificate> {
    let mut merged: Option<AccuracyCertificate> = None;
    for fragment in fragments {
        let cert = (*fragment)?;
        merged = Some(match merged {
            None => cert,
            Some(acc) => combine(acc, cert),
        });
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cert(certified: bool, error_bound: f64, confidence: f64, moe: f64) -> AccuracyCertificate {
        AccuracyCertificate {
            certified,
            error_bound,
            confidence,
            moe,
        }
    }

    #[test]
    fn single_fragment_is_the_identity() {
        let c = cert(true, 0.05, 0.95, 0.01);
        let merged = merge_certificates(&[Some(c)]).expect("one certified fragment");
        assert_eq!(merged.certified, c.certified);
        assert_eq!(merged.error_bound, c.error_bound);
        assert_eq!(merged.confidence, c.confidence);
        assert_eq!(merged.moe, c.moe);
    }

    #[test]
    fn merge_never_overclaims() {
        let tight = cert(true, 0.01, 0.99, 0.001);
        let loose = cert(true, 0.20, 0.90, 0.080);
        for pair in [[tight, loose], [loose, tight]] {
            let m = combine(pair[0], pair[1]);
            assert!(m.certified);
            assert_eq!(m.error_bound, 0.20, "error bound is the worst fragment's");
            assert_eq!(m.confidence, 0.90, "confidence is the weakest fragment's");
            assert_eq!(m.moe, 0.080, "interval half-width never shrinks");
        }
    }

    #[test]
    fn uncertified_fragment_poisons_certified_to_false() {
        let yes = cert(true, 0.05, 0.95, 0.01);
        let no = cert(false, 0.05, 0.95, 0.01);
        assert!(!combine(yes, no).certified);
        assert!(!combine(no, yes).certified);
    }

    #[test]
    fn missing_fragment_certificate_yields_none() {
        let c = cert(true, 0.05, 0.95, 0.01);
        assert!(merge_certificates(&[]).is_none());
        assert!(merge_certificates(&[None]).is_none());
        assert!(merge_certificates(&[Some(c), None]).is_none());
        assert!(merge_certificates(&[None, Some(c)]).is_none());
    }

    #[test]
    fn merge_is_order_insensitive() {
        let a = cert(true, 0.02, 0.97, 0.004);
        let b = cert(true, 0.10, 0.93, 0.020);
        let c = cert(false, 0.05, 0.99, 0.001);
        let abc = merge_certificates(&[Some(a), Some(b), Some(c)]).unwrap();
        let cba = merge_certificates(&[Some(c), Some(b), Some(a)]).unwrap();
        assert_eq!(abc.certified, cba.certified);
        assert_eq!(abc.error_bound, cba.error_bound);
        assert_eq!(abc.confidence, cba.confidence);
        assert_eq!(abc.moe, cba.moe);
    }
}
