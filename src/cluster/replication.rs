//! The replication log: one [`LogRecord`] per published primary epoch.
//!
//! The log *format* is `csag-updates v1` — the same text grammar
//! `GraphUpdate::parse_script` already reads — framed with the epoch the
//! batch produced. In-process replicas receive records over a channel
//! (the `Arc`'d batch is shared, never copied per replica); the
//! [`LogRecord::to_wire`] / [`LogRecord::parse_wire`] pair is the seam
//! for putting a replica behind a csag-wire v2 socket later: the record
//! a remote replica would read off the wire is byte-identical to what
//! the in-process channel carries.
//!
//! Correctness rests on one invariant: **epoch = batches applied**.
//! Every [`crate::engine::GraphStore::apply`] bumps the epoch exactly
//! once — no-op batches and erroneous batches included (an error
//! publishes the applied prefix) — so two stores that consume the
//! identical record sequence are in epoch lockstep, and their answers
//! at equal epochs are byte-identical (the churn property tests pin
//! this).

use crate::engine::GraphUpdate;
use std::sync::Arc;

/// One replication log entry: the update batch that produced `epoch` on
/// the primary.
#[derive(Clone, Debug)]
pub struct LogRecord {
    /// The epoch the primary published after applying `updates`.
    pub epoch: u64,
    /// The batch, shared between every replica's channel.
    pub updates: Arc<Vec<GraphUpdate>>,
}

impl LogRecord {
    /// A record for `epoch` carrying `updates`.
    pub fn new(epoch: u64, updates: Vec<GraphUpdate>) -> Self {
        LogRecord {
            epoch,
            updates: Arc::new(updates),
        }
    }

    /// Renders the record as an epoch-framed `csag-updates v1` script:
    /// an `# epoch N` header comment line followed by one update line
    /// per entry. This is the wire framing a socket-attached replica
    /// would consume.
    pub fn to_wire(&self) -> String {
        let mut s = format!("# epoch {}\n", self.epoch);
        for u in self.updates.iter() {
            s.push_str(&u.to_line());
            s.push('\n');
        }
        s
    }

    /// Parses [`LogRecord::to_wire`] output back into a record.
    ///
    /// # Errors
    /// A human-readable message for a missing/malformed epoch header or
    /// any offending update line.
    pub fn parse_wire(text: &str) -> Result<LogRecord, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty log record")?;
        let epoch = header
            .strip_prefix("# epoch ")
            .ok_or_else(|| format!("log record must start with `# epoch N`, got `{header}`"))?
            .trim()
            .parse::<u64>()
            .map_err(|_| format!("bad epoch in log record header `{header}`"))?;
        let body: String = lines.collect::<Vec<_>>().join("\n");
        Ok(LogRecord::new(epoch, GraphUpdate::parse_script(&body)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_framing_round_trips() {
        let record = LogRecord::new(
            7,
            vec![
                GraphUpdate::AddEdge { u: 1, v: 2 },
                GraphUpdate::SetAttributes {
                    v: 0,
                    tokens: Some(vec!["drama".into()]),
                    numeric: Some(vec![0.25]),
                },
                GraphUpdate::AddVertex {
                    tokens: vec![],
                    numeric: vec![1.5],
                },
            ],
        );
        let wire = record.to_wire();
        assert!(wire.starts_with("# epoch 7\n"));
        let back = LogRecord::parse_wire(&wire).unwrap();
        assert_eq!(back.epoch, 7);
        assert_eq!(*back.updates, *record.updates);

        // An empty batch (a pure epoch bump) still frames.
        let empty = LogRecord::new(3, Vec::new());
        let back = LogRecord::parse_wire(&empty.to_wire()).unwrap();
        assert_eq!((back.epoch, back.updates.len()), (3, 0));

        assert!(LogRecord::parse_wire("").is_err());
        assert!(
            LogRecord::parse_wire("add-edge 1 2\n").is_err(),
            "no header"
        );
        assert!(LogRecord::parse_wire("# epoch x\n").is_err());
        assert!(LogRecord::parse_wire("# epoch 1\nfrobnicate\n").is_err());
    }
}
