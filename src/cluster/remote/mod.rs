//! # `csag::cluster::remote` — cross-process replication over sockets
//!
//! [`crate::cluster::Router`] replicates a primary
//! [`crate::engine::GraphStore`] to N replicas — but in-process only.
//! This module takes the same replica contract (an ordered
//! [`LogRecord`](crate::cluster::LogRecord) consumer publishing a
//! watermark) across a process boundary, speaking **`csag-repl v1`**
//! over TCP or unix-domain sockets:
//!
//! * [`ReplListener`] — the primary side: accepts follower
//!   connections, handshakes on the follower's current epoch, catches
//!   it up (a WAL tail replay when the log still covers the gap, a
//!   full snapshot ship — the `csag::durability` checkpoint file's raw
//!   bytes — when it is behind the pruned horizon), then forwards the
//!   live record feed and reads `ack <epoch>` watermarks back.
//! * [`Follower`] — the replica side: a store in *this* process kept
//!   in epoch lockstep by applying the stream through the ordinary
//!   [`GraphStore::apply`](crate::engine::GraphStore::apply) path,
//!   reconnecting (with gap detection and snapshot reseed) after any
//!   drop. Serve reads from its store with an ordinary
//!   [`crate::service::Service`] + [`crate::service::Transport`].
//! * The router tracks each follower as a remote member with the
//!   existing lifecycle: ack silence or a dropped connection degrades
//!   it (watermark frozen — a pinned read can never be served stale),
//!   a reconnect reseeds it, acks return it to healthy. Metrics
//!   surface per-remote lag, bytes shipped, and reseeds in
//!   `csag-cluster-metrics-v1`.
//!
//! Wire framing reuses what already exists: log records cross the
//! socket in the WAL's checksummed `!rec` frames
//! ([`csag_graph::wal::frame`]) around
//! [`LogRecord::to_wire`](crate::cluster::LogRecord::to_wire) bodies,
//! and snapshots are `csag-graph v1` payloads. The normative grammar
//! lives in `docs/replication.md`.
//!
//! The deterministic failure seam is the same [`FaultPlan`] the WAL and
//! query transport use: [`ReplListener::bind_uds_with`] /
//! [`ReplListener::bind_tcp_with`] drop the connection at a scripted
//! *shipped-record* index, so the degrade → reconnect → reseed →
//! catch-up path runs under plain `cargo test`.
//!
//! [`FaultPlan`]: crate::durability::FaultPlan

pub(crate) mod feed;
mod follower;
mod listener;

pub use follower::{Follower, FollowerConfig};
pub use listener::ReplListener;

/// Protocol identifier sent in every hello line.
pub const PROTOCOL: &str = "csag-repl-v1";

/// Opens the follower's hello line:
/// `repl hello csag-repl-v1 epoch <E|none> name <NAME>`.
pub(crate) const HELLO_PREFIX: &str = "repl hello";
/// Opens the primary's stream response: `stream <E>` — log frames with
/// epochs `> E` follow.
pub(crate) const STREAM_PREFIX: &str = "stream";
/// Opens the primary's snapshot response: `snapshot <E> <len>` —
/// `len` raw `csag-graph v1` bytes follow, then log frames with epochs
/// `> E`.
pub(crate) const SNAPSHOT_PREFIX: &str = "snapshot";
/// Opens the primary's refusal: `error <message>`, then close.
pub(crate) const ERROR_PREFIX: &str = "error";
/// Opens every follower→primary ack line: `ack <epoch>`.
pub(crate) const ACK_PREFIX: &str = "ack ";

/// Parses a hello line into `(follower_epoch, name)`; `None` epoch
/// means the follower has no state and needs a snapshot.
pub(crate) fn parse_hello(line: &str) -> Result<(Option<u64>, String), String> {
    let rest = line
        .strip_prefix(HELLO_PREFIX)
        .ok_or_else(|| format!("expected `{HELLO_PREFIX} ...`, got `{line}`"))?;
    let mut tokens = rest.split_whitespace();
    if tokens.next() != Some(PROTOCOL) {
        return Err(format!("unsupported protocol in `{line}`"));
    }
    if tokens.next() != Some("epoch") {
        return Err(format!("missing `epoch` in `{line}`"));
    }
    let epoch = match tokens.next() {
        Some("none") => None,
        Some(t) => Some(
            t.parse::<u64>()
                .map_err(|_| format!("bad epoch `{t}` in `{line}`"))?,
        ),
        None => return Err(format!("missing epoch value in `{line}`")),
    };
    if tokens.next() != Some("name") {
        return Err(format!("missing `name` in `{line}`"));
    }
    let name = tokens
        .next()
        .ok_or_else(|| format!("missing name value in `{line}`"))?;
    if tokens.next().is_some() {
        return Err(format!("trailing tokens in `{line}`"));
    }
    Ok((epoch, name.to_string()))
}

/// The primary's handshake response, parsed by the follower.
pub(crate) enum Header {
    /// `stream <E>`: the follower's state was accepted as-is.
    Stream {
        /// The epoch the stream resumes above.
        from: u64,
    },
    /// `snapshot <E> <len>`: a full payload follows.
    Snapshot {
        /// The epoch the snapshot captures.
        epoch: u64,
        /// Payload length in bytes.
        len: usize,
    },
    /// `error <message>`: the primary refused the handshake.
    Error {
        /// Why.
        message: String,
    },
}

/// Parses the primary's handshake response line.
pub(crate) fn parse_header(line: &str) -> Result<Header, String> {
    let mut tokens = line.split_whitespace();
    match tokens.next() {
        Some(t) if t == STREAM_PREFIX => {
            let from = tokens
                .next()
                .and_then(|t| t.parse::<u64>().ok())
                .ok_or_else(|| format!("bad stream header `{line}`"))?;
            if tokens.next().is_some() {
                return Err(format!("trailing tokens in `{line}`"));
            }
            Ok(Header::Stream { from })
        }
        Some(t) if t == SNAPSHOT_PREFIX => {
            let epoch = tokens
                .next()
                .and_then(|t| t.parse::<u64>().ok())
                .ok_or_else(|| format!("bad snapshot header `{line}`"))?;
            let len = tokens
                .next()
                .and_then(|t| t.parse::<usize>().ok())
                .ok_or_else(|| format!("bad snapshot header `{line}`"))?;
            if tokens.next().is_some() {
                return Err(format!("trailing tokens in `{line}`"));
            }
            Ok(Header::Snapshot { epoch, len })
        }
        Some(t) if t == ERROR_PREFIX => Ok(Header::Error {
            message: tokens.collect::<Vec<_>>().join(" "),
        }),
        _ => Err(format!("unrecognized handshake response `{line}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_grammar_round_trips() {
        let (e, n) = parse_hello("repl hello csag-repl-v1 epoch 42 name f1").unwrap();
        assert_eq!((e, n.as_str()), (Some(42), "f1"));
        let (e, n) = parse_hello("repl hello csag-repl-v1 epoch none name fresh").unwrap();
        assert_eq!((e, n.as_str()), (None, "fresh"));
        for bad in [
            "",
            "hello",
            "repl hello csag-repl-v0 epoch 1 name x",
            "repl hello csag-repl-v1 epoch x name y",
            "repl hello csag-repl-v1 epoch 1",
            "repl hello csag-repl-v1 epoch 1 name x extra",
        ] {
            assert!(parse_hello(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn header_grammar_round_trips() {
        assert!(matches!(
            parse_header("stream 9").unwrap(),
            Header::Stream { from: 9 }
        ));
        assert!(matches!(
            parse_header("snapshot 4 128").unwrap(),
            Header::Snapshot { epoch: 4, len: 128 }
        ));
        match parse_header("error no such history").unwrap() {
            Header::Error { message } => assert_eq!(message, "no such history"),
            _ => panic!("expected error header"),
        }
        for bad in ["", "stream", "stream x", "snapshot 1", "frobnicate 3"] {
            assert!(parse_header(bad).is_err(), "accepted `{bad}`");
        }
    }
}
