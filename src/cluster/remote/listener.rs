//! The primary-side replication listener: accepts `csag-repl v1`
//! connections, executes the handshake/catch-up, then forwards the
//! router's live record feed while reading acks back.
//!
//! One connection, two threads:
//!
//! * the **connection thread** reads the hello line, registers the
//!   follower with the router ([`crate::cluster::Router`] decides
//!   stream / tail replay / snapshot under its write lock), writes the
//!   catch-up, and then forwards the live feed — one checksummed frame
//!   per [`LogRecord`], the same byte framing the WAL uses on disk;
//! * an **ack thread** reads `ack <epoch>` lines off the same socket
//!   and advances the member's watermark (which is also its heartbeat —
//!   ack silence degrades the member out of the caught-up set via
//!   [`crate::cluster::Router::health_check`]).
//!
//! A dropped connection (or a scripted
//! [`FaultPlan::drop_connection_at_request`] hit — indexed here by
//! *records shipped*) detaches the member: degraded, watermark frozen.
//! The follower reconnects, the handshake reseeds it, acks flow, and
//! the member returns to healthy — the exact local-replica lifecycle,
//! across a process boundary.

use super::feed::{CatchUp, RemoteMember};
use super::{parse_hello, ACK_PREFIX, ERROR_PREFIX, SNAPSHOT_PREFIX, STREAM_PREFIX};
use crate::cluster::replication::LogRecord;
use crate::cluster::Router;
use crate::durability::FaultPlan;
use crate::service::transport::{reclaim_stale_uds, BoundAddr, WireListener, WireSocket};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
#[cfg(unix)]
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::thread::JoinHandle;

/// One live replication connection: the handle to join and a hook that
/// severs its socket so both of its threads unblock during shutdown.
struct ReplConn {
    closer: Box<dyn Fn() + Send>,
    handle: JoinHandle<()>,
}

/// State shared between the accept loop, the connections, and the
/// [`ReplListener`] handle.
struct ReplShared {
    router: Arc<Router>,
    shutdown: AtomicBool,
    conns: Mutex<Vec<ReplConn>>,
    accepted: AtomicU64,
    /// Deterministic fault script: connection drops are indexed by log
    /// records shipped across all replication connections.
    faults: FaultPlan,
}

impl ReplShared {
    fn conns(&self) -> std::sync::MutexGuard<'_, Vec<ReplConn>> {
        self.conns.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn spawn_conn<S: WireSocket>(self: &Arc<Self>, stream: S) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
        let closer: Box<dyn Fn() + Send> = match stream.split_off_writer() {
            Ok(half) => Box::new(move || {
                let _ = half.abort();
            }),
            Err(_) => Box::new(|| {}),
        };
        let shared = Arc::clone(self);
        let spawned = std::thread::Builder::new()
            .name("csag-repl-conn".into())
            .spawn(move || serve_conn(&shared, stream));
        let Ok(handle) = spawned else { return };
        let mut conns = self.conns();
        let mut i = 0;
        while i < conns.len() {
            if conns[i].handle.is_finished() {
                let done = conns.swap_remove(i);
                let _ = done.handle.join();
            } else {
                i += 1;
            }
        }
        conns.push(ReplConn { closer, handle });
    }

    fn accept_loop<L: WireListener>(self: &Arc<Self>, listener: L) {
        loop {
            match listener.accept_stream() {
                Ok(stream) => {
                    if self.shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    self.spawn_conn(stream);
                }
                Err(_) => {
                    if self.shutdown.load(Ordering::Acquire) {
                        break;
                    }
                }
            }
        }
    }
}

/// A listening `csag-repl v1` endpoint over a shared
/// [`Router`]: the primary side of cross-process replication. Bind
/// with [`ReplListener::bind_tcp`] / [`ReplListener::bind_uds`]; each
/// accepted follower is handshaken, caught up (tail replay or snapshot
/// ship), and then fed the live record stream. See
/// `docs/replication.md` for the normative protocol grammar.
pub struct ReplListener {
    shared: Arc<ReplShared>,
    accept: Option<JoinHandle<()>>,
    addr: BoundAddr,
}

impl ReplListener {
    /// Binds a TCP replication listener (port 0 for ephemeral; read it
    /// back from [`ReplListener::local_addr`]) and starts accepting
    /// followers.
    ///
    /// # Errors
    /// Any [`io::Error`] from binding or inspecting the listener.
    pub fn bind_tcp(router: Arc<Router>, addr: impl ToSocketAddrs) -> io::Result<ReplListener> {
        ReplListener::bind_tcp_with(router, addr, FaultPlan::none())
    }

    /// [`ReplListener::bind_tcp`] with a fault script:
    /// [`FaultPlan::drop_connection_at_request`] indices count *log
    /// records shipped* across this listener's connections, and a hit
    /// severs that record's connection abruptly — the deterministic
    /// mid-stream replication failure.
    ///
    /// # Errors
    /// Any [`io::Error`] from binding or inspecting the listener.
    pub fn bind_tcp_with(
        router: Arc<Router>,
        addr: impl ToSocketAddrs,
        faults: FaultPlan,
    ) -> io::Result<ReplListener> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        ReplListener::start(router, listener, BoundAddr::Tcp(local), faults)
    }

    /// Binds a unix-domain replication listener (stale socket files are
    /// reclaimed exactly as [`crate::service::Transport::bind_uds`]
    /// does) and starts accepting followers.
    ///
    /// # Errors
    /// [`io::ErrorKind::AddrInUse`] when a live server already serves
    /// `path`; otherwise any [`io::Error`] from binding.
    #[cfg(unix)]
    pub fn bind_uds(router: Arc<Router>, path: impl AsRef<Path>) -> io::Result<ReplListener> {
        ReplListener::bind_uds_with(router, path, FaultPlan::none())
    }

    /// [`ReplListener::bind_uds`] with a fault script (see
    /// [`ReplListener::bind_tcp_with`]).
    ///
    /// # Errors
    /// Same as [`ReplListener::bind_uds`].
    #[cfg(unix)]
    pub fn bind_uds_with(
        router: Arc<Router>,
        path: impl AsRef<Path>,
        faults: FaultPlan,
    ) -> io::Result<ReplListener> {
        let path = path.as_ref().to_path_buf();
        reclaim_stale_uds(&path)?;
        let listener = UnixListener::bind(&path)?;
        ReplListener::start(router, listener, BoundAddr::Unix(path), faults)
    }

    fn start<L: WireListener>(
        router: Arc<Router>,
        listener: L,
        addr: BoundAddr,
        faults: FaultPlan,
    ) -> io::Result<ReplListener> {
        let shared = Arc::new(ReplShared {
            router,
            shutdown: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
            accepted: AtomicU64::new(0),
            faults,
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("csag-repl-accept".into())
            .spawn(move || accept_shared.accept_loop(listener))?;
        Ok(ReplListener {
            shared,
            accept: Some(accept),
            addr,
        })
    }

    /// The address this listener is bound to (with the real port when
    /// bound to port 0).
    pub fn local_addr(&self) -> &BoundAddr {
        &self.addr
    }

    /// Total replication connections accepted so far.
    pub fn connections_accepted(&self) -> u64 {
        self.shared.accepted.load(Ordering::Relaxed)
    }

    /// Stops accepting, severs every replication connection, and joins
    /// the per-connection threads. Followers see a dropped connection
    /// and will retry against whatever binds this address next.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        match &self.addr {
            BoundAddr::Tcp(a) => {
                let _ = TcpStream::connect(a);
            }
            #[cfg(unix)]
            BoundAddr::Unix(p) => {
                let _ = UnixStream::connect(p);
            }
        }
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let conns = std::mem::take(&mut *self.shared.conns());
        for c in &conns {
            (c.closer)();
        }
        for c in conns {
            let _ = c.handle.join();
        }
        #[cfg(unix)]
        if let BoundAddr::Unix(p) = &self.addr {
            let _ = std::fs::remove_file(p);
        }
    }
}

impl Drop for ReplListener {
    /// Same as [`ReplListener::shutdown`].
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Serves one follower connection end to end: handshake → catch-up →
/// live forwarding, with the ack reader on a second thread.
fn serve_conn<S: WireSocket>(shared: &Arc<ReplShared>, stream: S) {
    let Ok(read_half) = stream.split_off_writer() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut hello = String::new();
    match reader.read_line(&mut hello) {
        Ok(n) if n > 0 => {}
        _ => return,
    }
    let Ok((follower_epoch, name)) = parse_hello(hello.trim_end()) else {
        let mut out = BufWriter::new(stream);
        let _ = writeln!(out, "{ERROR_PREFIX} malformed hello");
        return;
    };

    let attach = match shared.router.attach_remote(&name, follower_epoch) {
        Ok(attach) => attach,
        Err(msg) => {
            let mut out = BufWriter::new(stream);
            let _ = writeln!(out, "{ERROR_PREFIX} {msg}");
            return;
        }
    };
    let member = Arc::clone(&attach.member);
    let generation = attach.generation;

    // Ack reader: every `ack <epoch>` advances the watermark and beats
    // the heartbeat; EOF or damage detaches this connection's
    // generation (a fast reconnect's newer attach is left alone).
    let ack_member = Arc::clone(&member);
    let ack_thread = std::thread::Builder::new()
        .name("csag-repl-ack".into())
        .spawn(move || {
            let mut line = String::new();
            loop {
                line.clear();
                match reader.read_line(&mut line) {
                    Ok(0) | Err(_) => break,
                    Ok(_) => {}
                }
                let Some(rest) = line.trim_end().strip_prefix(ACK_PREFIX) else {
                    break;
                };
                let Ok(epoch) = rest.trim().parse::<u64>() else {
                    break;
                };
                ack_member.note_ack(epoch);
            }
            ack_member.detach(generation);
        });
    let Ok(ack_thread) = ack_thread else {
        member.detach(generation);
        return;
    };

    // Catch-up, then the live feed. Any write failure (or a scripted
    // drop) severs the socket, which also unblocks the ack reader.
    let ok = write_catch_up(&member, attach.catch_up, &stream, shared)
        && forward_feed(&member, attach.feed, &stream, shared);
    if !ok {
        member.detach(generation);
    }
    let _ = stream.abort();
    let _ = ack_thread.join();
}

/// Writes the handshake response and any catch-up payload. `true` on
/// success.
fn write_catch_up<S: WireSocket>(
    member: &RemoteMember,
    catch_up: CatchUp,
    stream: &S,
    shared: &ReplShared,
) -> bool {
    let Ok(write_half) = stream.split_off_writer() else {
        return false;
    };
    let mut out = BufWriter::new(write_half);
    let written = match catch_up {
        CatchUp::Stream { from } => writeln!(out, "{STREAM_PREFIX} {from}").is_ok(),
        CatchUp::Tail { from, records } => {
            writeln!(out, "{STREAM_PREFIX} {from}").is_ok()
                && records
                    .iter()
                    .all(|r| write_record(member, r, &mut out, shared))
        }
        CatchUp::Snapshot { epoch, bytes, tail } => {
            member.snapshots_shipped.fetch_add(1, Ordering::Relaxed);
            member
                .bytes_shipped
                .fetch_add(bytes.len() as u64, Ordering::Relaxed);
            writeln!(out, "{SNAPSHOT_PREFIX} {epoch} {}", bytes.len()).is_ok()
                && out.write_all(&bytes).is_ok()
                && tail
                    .iter()
                    .all(|r| write_record(member, r, &mut out, shared))
        }
    };
    written && out.flush().is_ok()
}

/// Frames and writes one record, consulting the fault script first: a
/// scripted hit makes the caller abort the socket mid-stream (the
/// follower sees a reset and reconnects). `true` when the record went
/// out.
fn write_record<W: Write>(
    member: &RemoteMember,
    record: &LogRecord,
    out: &mut W,
    shared: &ReplShared,
) -> bool {
    if shared.faults.next_request_drops() {
        return false;
    }
    let frame = csag_graph::wal::frame(record.to_wire().as_bytes());
    if out.write_all(&frame).is_err() {
        return false;
    }
    member.records_sent.fetch_add(1, Ordering::Relaxed);
    member
        .bytes_shipped
        .fetch_add(frame.len() as u64, Ordering::Relaxed);
    true
}

/// Forwards the live feed until the channel closes (router dropped or
/// a newer connection superseded this one), a write fails, or a fault
/// fires. `true` only for a clean channel close.
fn forward_feed<S: WireSocket>(
    member: &RemoteMember,
    feed: mpsc::Receiver<LogRecord>,
    stream: &S,
    shared: &ReplShared,
) -> bool {
    let Ok(write_half) = stream.split_off_writer() else {
        return false;
    };
    let mut out = BufWriter::new(write_half);
    while let Ok(record) = feed.recv() {
        if !write_record(member, &record, &mut out, shared) || out.flush().is_err() {
            return false;
        }
    }
    true
}
