//! The router-side representation of a remote replica: the
//! [`RemoteMember`] registry entry the [`crate::cluster::Router`] fans
//! records into, plus the catch-up decision ([`CatchUp`]) the
//! replication listener executes during a `csag-repl v1` handshake.

use crate::cluster::health::{ReplicaHealth, StatusCell, Watermark};
use crate::cluster::replication::LogRecord;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};

/// Everything one handshaken replication connection needs, produced
/// atomically by [`crate::cluster::Router::attach_remote`].
pub(crate) struct RemoteAttach {
    /// The (new or re-attached) registry entry.
    pub(crate) member: Arc<RemoteMember>,
    /// The live-record channel this connection forwards.
    pub(crate) feed: mpsc::Receiver<LogRecord>,
    /// Attach generation, for [`RemoteMember::detach`].
    pub(crate) generation: u64,
    /// The catch-up the connection must execute before forwarding.
    pub(crate) catch_up: CatchUp,
}

/// How a freshly-handshaken follower gets from its epoch to the
/// primary's: decided by [`crate::cluster::Router::attach_remote`]
/// under the write lock, executed by the listener's connection thread.
pub(crate) enum CatchUp {
    /// The follower's state already equals the primary's at `from`;
    /// live records with epochs `> from` follow immediately.
    Stream {
        /// The epoch the follower proved (echoed back in the header).
        from: u64,
    },
    /// The follower is behind, but the log still covers the gap: replay
    /// `records` (epochs contiguous above `from`), then live records.
    Tail {
        /// The follower's proven epoch.
        from: u64,
        /// The `(from, pinned]` run read back from the WAL segments.
        records: Vec<LogRecord>,
    },
    /// The follower is behind the pruned log horizon (or has no state
    /// at all): ship a full snapshot at `epoch`, then `tail` records
    /// covering `(epoch, pinned]`, then live records.
    Snapshot {
        /// The epoch the snapshot payload captures.
        epoch: u64,
        /// The raw `csag-graph v1` payload (a checkpoint file's bytes
        /// when the primary is WAL-backed — streamed, not re-encoded).
        bytes: Vec<u8>,
        /// Records between the snapshot and the attach-time epoch.
        tail: Vec<LogRecord>,
    },
}

/// One remote replica as the router tracks it: health + heartbeat
/// ([`StatusCell`]), the acked high-watermark, shipping counters, and
/// the live feed channel (if a connection is attached).
///
/// Members are keyed by follower name and survive disconnects: a
/// reconnect with the same name re-attaches to the same entry, so
/// `degraded`/`reseeds` counters describe the replica, not the
/// connection.
pub(crate) struct RemoteMember {
    pub(crate) name: String,
    pub(crate) status: StatusCell,
    /// Highest epoch the follower has *acked* (applied and published on
    /// its side). Frozen while disconnected — a degraded remote never
    /// looks caught-up.
    pub(crate) watermark: Watermark,
    pub(crate) records_sent: AtomicU64,
    pub(crate) bytes_shipped: AtomicU64,
    /// Full snapshots shipped (the reseed counter).
    pub(crate) snapshots_shipped: AtomicU64,
    pub(crate) acks: AtomicU64,
    pub(crate) connected: AtomicBool,
    /// The live connection's record channel; `None` while disconnected
    /// (records are simply not sent — the reconnect handshake catches
    /// the follower up from its own epoch).
    feed: Mutex<Option<mpsc::Sender<LogRecord>>>,
    /// Bumped on every attach; a stale connection's detach (its
    /// generation no longer current) is a no-op, so a fast reconnect is
    /// never clobbered by the old connection's teardown.
    generation: AtomicU64,
}

impl RemoteMember {
    pub(crate) fn new(name: &str) -> Self {
        RemoteMember {
            name: name.to_string(),
            status: StatusCell::new(),
            watermark: Watermark::new(0),
            records_sent: AtomicU64::new(0),
            bytes_shipped: AtomicU64::new(0),
            snapshots_shipped: AtomicU64::new(0),
            acks: AtomicU64::new(0),
            connected: AtomicBool::new(false),
            feed: Mutex::new(None),
            generation: AtomicU64::new(0),
        }
    }

    /// Attaches a fresh connection's feed, superseding any previous one
    /// (dropping the old sender makes the stale connection's forward
    /// loop exit). Returns the attach generation for [`Self::detach`].
    pub(crate) fn attach(&self, tx: mpsc::Sender<LogRecord>) -> u64 {
        let generation = self.generation.fetch_add(1, Ordering::AcqRel) + 1;
        *self.feed.lock().unwrap_or_else(PoisonError::into_inner) = Some(tx);
        self.connected.store(true, Ordering::Release);
        self.status.beat();
        generation
    }

    /// Tears down the connection attached at `generation`: clears the
    /// feed, marks the member degraded (out of the caught-up set, its
    /// watermark frozen). A stale generation is a no-op.
    pub(crate) fn detach(&self, generation: u64) {
        if self.generation.load(Ordering::Acquire) != generation {
            return;
        }
        *self.feed.lock().unwrap_or_else(PoisonError::into_inner) = None;
        self.connected.store(false, Ordering::Release);
        self.status.set_health(ReplicaHealth::Degraded);
    }

    /// Queues one live record to the attached connection (no-op while
    /// disconnected). A send failure (connection thread already gone)
    /// degrades the member immediately instead of waiting for the
    /// health check.
    pub(crate) fn send(&self, record: &LogRecord) {
        let mut feed = self.feed.lock().unwrap_or_else(PoisonError::into_inner);
        let delivered = match feed.as_ref() {
            Some(tx) => tx.send(record.clone()).is_ok(),
            None => return,
        };
        if !delivered {
            *feed = None;
            self.connected.store(false, Ordering::Release);
            self.status.set_health(ReplicaHealth::Degraded);
        }
    }

    /// Records one `ack <epoch>` from the follower: heartbeat, advance
    /// the watermark (never backward), and return to healthy — an
    /// acking follower is alive and applying, whatever state a drop or
    /// reseed left the member in.
    pub(crate) fn note_ack(&self, epoch: u64) {
        self.status.beat();
        self.watermark.advance_to(epoch);
        self.acks.fetch_add(1, Ordering::Relaxed);
        if self.status.health() != ReplicaHealth::Healthy {
            self.status.set_health(ReplicaHealth::Healthy);
        }
    }
}
