//! The follower runtime: a [`GraphStore`] in *this* process kept in
//! epoch lockstep with a primary in *another* process over `csag-repl
//! v1`.
//!
//! [`Follower::start`] spawns one session thread that loops forever:
//! connect → hello (carrying the follower's current epoch, or `none`
//! before any state exists) → swallow the catch-up (a shipped snapshot
//! resets the store via [`GraphStore::reset_to`]; a tail replay is just
//! early log frames) → apply each framed [`LogRecord`] through the
//! ordinary [`GraphStore::apply`] path, acking every applied epoch —
//! plus periodic heartbeat acks so an idle follower never looks silent.
//! Any failure (connection reset, checksum mismatch, epoch gap) tears
//! the session down and reconnects after a backoff; the handshake then
//! resynchronizes from whatever epoch the store actually reached, so a
//! gap is *detected* here but *repaired* by the listener (tail replay
//! or snapshot reseed).
//!
//! Because **epoch = batches applied** and the stream is gapless and
//! in-order, the follower's answers at epoch `E` are byte-identical to
//! the primary's at `E` — serve them with an ordinary
//! [`crate::service::Service`] + [`crate::service::Transport`] over the
//! follower's store and clients cannot tell the processes apart.

use crate::cluster::replication::LogRecord;
use crate::engine::GraphStore;
use csag_graph::builder::GraphBuilder;
use csag_graph::AttributedGraph;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{Shutdown, TcpStream};
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use super::{parse_header, Header, ACK_PREFIX, HELLO_PREFIX, PROTOCOL};

/// Tuning for a [`Follower`].
#[derive(Clone, Debug)]
pub struct FollowerConfig {
    /// The name this follower registers under on the primary (the
    /// router's registry key; reconnects with the same name re-attach
    /// to the same member).
    pub name: String,
    /// Optional seed graph: a follower seeded with the primary's
    /// epoch-0 graph skips the initial snapshot ship. Without one the
    /// follower starts empty and hellos with `epoch none`, forcing a
    /// snapshot.
    pub seed: Option<Arc<AttributedGraph>>,
    /// Delay between reconnect attempts after a failed or dropped
    /// session.
    pub reconnect_backoff: Duration,
    /// Heartbeat cadence: an idle session still acks its current epoch
    /// this often, so ack-silence health checks see a live follower.
    pub ack_interval: Duration,
}

impl Default for FollowerConfig {
    fn default() -> Self {
        FollowerConfig {
            name: "follower".into(),
            seed: None,
            reconnect_backoff: Duration::from_millis(50),
            ack_interval: Duration::from_millis(20),
        }
    }
}

/// Where a follower connects: `tcp://host:port`, `unix:///path`, a bare
/// `host:port`, or a bare filesystem path (anything containing `/`).
enum ReplTarget {
    Tcp(String),
    #[cfg(unix)]
    Unix(PathBuf),
}

impl ReplTarget {
    fn parse(addr: &str) -> io::Result<ReplTarget> {
        if let Some(rest) = addr.strip_prefix("tcp://") {
            return Ok(ReplTarget::Tcp(rest.to_string()));
        }
        #[cfg(unix)]
        if let Some(rest) = addr.strip_prefix("unix://") {
            return Ok(ReplTarget::Unix(PathBuf::from(rest)));
        }
        #[cfg(unix)]
        if addr.contains('/') {
            return Ok(ReplTarget::Unix(PathBuf::from(addr)));
        }
        if addr.contains(':') {
            return Ok(ReplTarget::Tcp(addr.to_string()));
        }
        Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("unrecognized replication address `{addr}`"),
        ))
    }

    fn connect(&self) -> io::Result<ReplStream> {
        match self {
            ReplTarget::Tcp(addr) => {
                let s = TcpStream::connect(addr.as_str())?;
                // Acks are tiny writes racing the incoming stream;
                // Nagle would hold them back for the delayed ACK.
                s.set_nodelay(true)?;
                Ok(ReplStream::Tcp(s))
            }
            #[cfg(unix)]
            ReplTarget::Unix(path) => Ok(ReplStream::Unix(UnixStream::connect(path)?)),
        }
    }
}

/// The follower side of one replication socket (TCP or unix-domain).
enum ReplStream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl ReplStream {
    fn try_clone(&self) -> io::Result<ReplStream> {
        match self {
            ReplStream::Tcp(s) => s.try_clone().map(ReplStream::Tcp),
            #[cfg(unix)]
            ReplStream::Unix(s) => s.try_clone().map(ReplStream::Unix),
        }
    }

    fn abort(&self) {
        match self {
            ReplStream::Tcp(s) => {
                let _ = s.shutdown(Shutdown::Both);
            }
            #[cfg(unix)]
            ReplStream::Unix(s) => {
                let _ = s.shutdown(Shutdown::Both);
            }
        }
    }
}

impl Read for ReplStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            ReplStream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            ReplStream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for ReplStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            ReplStream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            ReplStream::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            ReplStream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            ReplStream::Unix(s) => s.flush(),
        }
    }
}

/// Counters and control state shared with the session thread.
struct FollowerShared {
    store: Arc<GraphStore>,
    stop: AtomicBool,
    /// `true` once the store holds real state (seeded at start, or a
    /// snapshot landed); until then hellos carry `epoch none`.
    synced: AtomicBool,
    connected: AtomicBool,
    records_applied: AtomicU64,
    snapshots_received: AtomicU64,
    /// Sessions opened after the first (each one is a reconnect).
    reconnects: AtomicU64,
    /// The live session's socket, for severing on [`Follower::stop`].
    live: Mutex<Option<ReplStream>>,
}

/// A remote replica runtime: owns the follower store and the session
/// thread that keeps it in lockstep with the primary. See the
/// [module docs](super).
pub struct Follower {
    shared: Arc<FollowerShared>,
    join: Option<JoinHandle<()>>,
}

impl Follower {
    /// Starts following the primary's replication listener at `addr`
    /// (`tcp://host:port`, `unix:///path`, bare `host:port`, or a bare
    /// socket path). Returns immediately; the session thread connects
    /// (and reconnects) in the background.
    ///
    /// # Errors
    /// [`io::ErrorKind::InvalidInput`] for an unparseable address (a
    /// *reachable* but dead address is retried forever, not an error).
    pub fn start(addr: &str, config: FollowerConfig) -> io::Result<Follower> {
        let target = ReplTarget::parse(addr)?;
        let (store, synced) = match &config.seed {
            Some(graph) => (GraphStore::from_arc(Arc::clone(graph)), true),
            None => {
                let empty = GraphBuilder::new(0)
                    .build()
                    .expect("empty graph always builds");
                (GraphStore::new(empty), false)
            }
        };
        let shared = Arc::new(FollowerShared {
            store: Arc::new(store),
            stop: AtomicBool::new(false),
            synced: AtomicBool::new(synced),
            connected: AtomicBool::new(false),
            records_applied: AtomicU64::new(0),
            snapshots_received: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
            live: Mutex::new(None),
        });
        let session_shared = Arc::clone(&shared);
        let join = std::thread::Builder::new()
            .name("csag-repl-follower".into())
            .spawn(move || session_loop(&session_shared, &target, &config))?;
        Ok(Follower {
            shared,
            join: Some(join),
        })
    }

    /// The follower's store: epoch-pinned reads against it uphold the
    /// same guarantees as against the primary (a pin above the applied
    /// watermark waits on the store's own publish watch, never serving
    /// stale state). Front it with a [`crate::service::Service`] to
    /// serve clients.
    pub fn store(&self) -> &Arc<GraphStore> {
        &self.shared.store
    }

    /// The highest epoch this follower has applied and published.
    pub fn epoch(&self) -> u64 {
        self.shared.store.published_epoch()
    }

    /// `true` while a replication session is live.
    pub fn connected(&self) -> bool {
        self.shared.connected.load(Ordering::Acquire)
    }

    /// `true` once the store holds real state (seed or snapshot).
    pub fn synced(&self) -> bool {
        self.shared.synced.load(Ordering::Acquire)
    }

    /// Log records applied across all sessions.
    pub fn records_applied(&self) -> u64 {
        self.shared.records_applied.load(Ordering::Relaxed)
    }

    /// Snapshots swallowed (initial seed-over-the-wire + reseeds).
    pub fn snapshots_received(&self) -> u64 {
        self.shared.snapshots_received.load(Ordering::Relaxed)
    }

    /// Sessions opened after the first.
    pub fn reconnects(&self) -> u64 {
        self.shared.reconnects.load(Ordering::Relaxed)
    }

    /// Blocks until the follower publishes `epoch` (or later), or
    /// `timeout` elapses; `true` when reached.
    pub fn wait_for_epoch(&self, epoch: u64, timeout: Duration) -> bool {
        self.shared.store.subscribe().wait_for(epoch, timeout)
    }

    /// Stops the session thread (severing any live connection) and
    /// joins it. The store stays usable at its last published epoch.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(live) = self
            .shared
            .live
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .as_ref()
        {
            live.abort();
        }
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for Follower {
    /// Same as [`Follower::stop`].
    fn drop(&mut self) {
        self.stop_inner();
    }
}

/// Connect–follow–reconnect forever (until stopped).
fn session_loop(shared: &Arc<FollowerShared>, target: &ReplTarget, config: &FollowerConfig) {
    let mut sessions = 0u64;
    while !shared.stop.load(Ordering::Acquire) {
        if let Ok(stream) = target.connect() {
            if sessions > 0 {
                shared.reconnects.fetch_add(1, Ordering::Relaxed);
            }
            sessions += 1;
            if let Ok(keeper) = stream.try_clone() {
                *shared.live.lock().unwrap_or_else(PoisonError::into_inner) = Some(keeper);
            }
            let _ = run_session(shared, stream, config);
            shared.connected.store(false, Ordering::Release);
            *shared.live.lock().unwrap_or_else(PoisonError::into_inner) = None;
        }
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        std::thread::sleep(config.reconnect_backoff);
    }
}

/// One replication session: hello → catch-up → frame loop. Returns
/// `Err` on any anomaly; the caller reconnects.
fn run_session(
    shared: &Arc<FollowerShared>,
    stream: ReplStream,
    config: &FollowerConfig,
) -> Result<(), String> {
    let write_half = stream.try_clone().map_err(|e| e.to_string())?;
    let writer = Arc::new(Mutex::new(write_half));
    let mut reader = BufReader::new(stream);

    let epoch_token = if shared.synced.load(Ordering::Acquire) {
        shared.store.published_epoch().to_string()
    } else {
        "none".to_string()
    };
    {
        let mut w = writer.lock().unwrap_or_else(PoisonError::into_inner);
        writeln!(
            w,
            "{HELLO_PREFIX} {PROTOCOL} epoch {epoch_token} name {}",
            config.name
        )
        .map_err(|e| e.to_string())?;
        w.flush().map_err(|e| e.to_string())?;
    }

    let mut line = String::new();
    reader.read_line(&mut line).map_err(|e| e.to_string())?;
    match parse_header(line.trim_end())? {
        Header::Stream { from } => {
            // The stream header echoes the epoch the primary accepted;
            // anything else means the handshake raced a different
            // history and the frames to come would not line up.
            if from != shared.store.published_epoch() {
                return Err(format!(
                    "primary resumed at epoch {from}, we are at {}",
                    shared.store.published_epoch()
                ));
            }
        }
        Header::Snapshot { epoch, len } => {
            let mut bytes = vec![0u8; len];
            reader.read_exact(&mut bytes).map_err(|e| e.to_string())?;
            // A snapshot at or below our own epoch carries state we
            // already have (epoch lockstep makes it identical); resets
            // only ever move the published epoch forward.
            if epoch > shared.store.published_epoch() || !shared.synced.load(Ordering::Acquire) {
                let graph = csag_graph::io::read_graph(&bytes[..])
                    .map_err(|e| format!("unreadable snapshot: {e}"))?;
                shared.store.reset_to(Arc::new(graph), epoch);
                shared.synced.store(true, Ordering::Release);
                shared.snapshots_received.fetch_add(1, Ordering::Relaxed);
            }
            send_ack(&writer, shared.store.published_epoch())?;
        }
        Header::Error { message } => return Err(format!("primary refused: {message}")),
    }
    shared.connected.store(true, Ordering::Release);

    // Heartbeat acks: an idle follower still proves liveness (and its
    // watermark) every `ack_interval`.
    let beat_done = Arc::new(AtomicBool::new(false));
    let beat = {
        let writer = Arc::clone(&writer);
        let store = Arc::clone(&shared.store);
        let done = Arc::clone(&beat_done);
        let interval = config.ack_interval;
        std::thread::Builder::new()
            .name("csag-repl-beat".into())
            .spawn(move || {
                while !done.load(Ordering::Acquire) {
                    std::thread::sleep(interval);
                    if done.load(Ordering::Acquire) {
                        break;
                    }
                    if send_ack(&writer, store.published_epoch()).is_err() {
                        break;
                    }
                }
            })
            .map_err(|e| e.to_string())?
    };

    let outcome = frame_loop(shared, &mut reader, &writer);
    beat_done.store(true, Ordering::Release);
    reader.get_ref().abort();
    let _ = beat.join();
    outcome
}

/// Applies framed records until EOF or an anomaly.
fn frame_loop(
    shared: &Arc<FollowerShared>,
    reader: &mut BufReader<ReplStream>,
    writer: &Arc<Mutex<ReplStream>>,
) -> Result<(), String> {
    loop {
        if shared.stop.load(Ordering::Acquire) {
            return Ok(());
        }
        let Some(body) = csag_graph::wal::read_frame(reader)? else {
            return Ok(()); // clean EOF: primary shut down
        };
        let text = std::str::from_utf8(&body).map_err(|_| "frame body is not UTF-8")?;
        let record = LogRecord::parse_wire(text)?;
        let published = shared.store.published_epoch();
        if record.epoch <= published {
            // Overlap below a snapshot / our proven epoch: already
            // reflected in our state.
            continue;
        }
        if record.epoch != published + 1 {
            // A gap the stream contract forbids: tear the session down;
            // the reconnect handshake reseeds us from `published`.
            return Err(format!(
                "epoch gap: at {published}, stream sent {}",
                record.epoch
            ));
        }
        // Replaying an erroneous batch reproduces the same published
        // prefix the primary saw — replication semantics, not a
        // failure.
        let _ = shared.store.apply(&record.updates);
        if shared.store.published_epoch() != record.epoch {
            return Err(format!(
                "applying record {} left the store at epoch {}",
                record.epoch,
                shared.store.published_epoch()
            ));
        }
        shared.records_applied.fetch_add(1, Ordering::Relaxed);
        send_ack(writer, record.epoch)?;
    }
}

fn send_ack(writer: &Arc<Mutex<ReplStream>>, epoch: u64) -> Result<(), String> {
    let mut w = writer.lock().unwrap_or_else(PoisonError::into_inner);
    writeln!(w, "{ACK_PREFIX}{epoch}").map_err(|e| e.to_string())?;
    w.flush().map_err(|e| e.to_string())
}
