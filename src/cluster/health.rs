//! Replica health primitives: the lifecycle state machine
//! ([`ReplicaHealth`]), the heartbeat/status cell the router probes,
//! and the condvar-backed per-replica high-watermark.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Lifecycle state of one replica in the read rotation.
///
/// Only [`ReplicaHealth::Healthy`] replicas serve reads. A replica that
/// fails to apply a log record (or stops heartbeating) becomes
/// [`ReplicaHealth::Degraded`] — drained out of the rotation, its
/// watermark frozen so no pinned read can land on stale state — until
/// the router queues a reseed ([`ReplicaHealth::Reseeding`]) and the
/// replica rebuilds from the primary's snapshot, returning to healthy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplicaHealth {
    /// In the read rotation, applying log records.
    Healthy,
    /// Out of the rotation; discarding log records until reseeded.
    Degraded,
    /// A reseed is queued or in progress; still out of the rotation.
    Reseeding,
}

impl ReplicaHealth {
    /// Stable lower-case name (the metrics JSON spelling).
    pub fn name(self) -> &'static str {
        match self {
            ReplicaHealth::Healthy => "healthy",
            ReplicaHealth::Degraded => "degraded",
            ReplicaHealth::Reseeding => "reseeding",
        }
    }

    fn from_u8(v: u8) -> ReplicaHealth {
        match v {
            0 => ReplicaHealth::Healthy,
            1 => ReplicaHealth::Degraded,
            _ => ReplicaHealth::Reseeding,
        }
    }

    fn to_u8(self) -> u8 {
        match self {
            ReplicaHealth::Healthy => 0,
            ReplicaHealth::Degraded => 1,
            ReplicaHealth::Reseeding => 2,
        }
    }
}

/// Lock-free health + heartbeat cell, shared between the replica thread
/// (which beats) and the router (which probes and degrades).
pub(crate) struct StatusCell {
    health: AtomicU8,
    /// Milliseconds since `origin` at the last heartbeat.
    beat_ms: AtomicU64,
    origin: Instant,
    /// Transitions *into* `Degraded` (a monotonic incident counter).
    degraded_marks: AtomicU64,
}

impl StatusCell {
    pub(crate) fn new() -> Self {
        StatusCell {
            health: AtomicU8::new(ReplicaHealth::Healthy.to_u8()),
            beat_ms: AtomicU64::new(0),
            origin: Instant::now(),
            degraded_marks: AtomicU64::new(0),
        }
    }

    pub(crate) fn health(&self) -> ReplicaHealth {
        ReplicaHealth::from_u8(self.health.load(Ordering::Acquire))
    }

    pub(crate) fn set_health(&self, h: ReplicaHealth) {
        if h == ReplicaHealth::Degraded && self.health() != ReplicaHealth::Degraded {
            self.degraded_marks.fetch_add(1, Ordering::Relaxed);
        }
        self.health.store(h.to_u8(), Ordering::Release);
    }

    pub(crate) fn degraded_marks(&self) -> u64 {
        self.degraded_marks.load(Ordering::Relaxed)
    }

    /// Records "alive now" (called by the replica loop every iteration).
    pub(crate) fn beat(&self) {
        let ms = self.origin.elapsed().as_millis() as u64;
        self.beat_ms.store(ms, Ordering::Release);
    }

    /// Time since the last heartbeat.
    pub(crate) fn silence(&self) -> Duration {
        let last = Duration::from_millis(self.beat_ms.load(Ordering::Acquire));
        self.origin.elapsed().saturating_sub(last)
    }
}

/// The per-replica high-watermark: the highest epoch the replica has
/// *published* (applied and made readable). Waiters block on a condvar
/// that the replica signals after each advance — the router never polls
/// a healthy replica.
pub(crate) struct Watermark {
    epoch: Mutex<u64>,
    advanced: Condvar,
}

impl Watermark {
    pub(crate) fn new(epoch: u64) -> Self {
        Watermark {
            epoch: Mutex::new(epoch),
            advanced: Condvar::new(),
        }
    }

    pub(crate) fn current(&self) -> u64 {
        *self.epoch.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Moves the watermark forward (never backward) and wakes waiters.
    pub(crate) fn advance_to(&self, epoch: u64) {
        let mut guard = self.epoch.lock().unwrap_or_else(PoisonError::into_inner);
        if epoch > *guard {
            *guard = epoch;
            self.advanced.notify_all();
        }
    }

    /// Blocks until the watermark reaches `epoch` or `timeout` elapses;
    /// `true` when reached.
    pub(crate) fn wait_for(&self, epoch: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut guard = self.epoch.lock().unwrap_or_else(PoisonError::into_inner);
        while *guard < epoch {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return false;
            }
            let (next, _timed_out) = self
                .advanced
                .wait_timeout(guard, left)
                .unwrap_or_else(PoisonError::into_inner);
            guard = next;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn health_names_and_transitions() {
        for h in [
            ReplicaHealth::Healthy,
            ReplicaHealth::Degraded,
            ReplicaHealth::Reseeding,
        ] {
            assert_eq!(ReplicaHealth::from_u8(h.to_u8()), h);
            assert!(!h.name().is_empty());
        }
        let cell = StatusCell::new();
        assert_eq!(cell.health(), ReplicaHealth::Healthy);
        cell.set_health(ReplicaHealth::Degraded);
        cell.set_health(ReplicaHealth::Degraded);
        assert_eq!(cell.degraded_marks(), 1, "re-marking is not an incident");
        cell.set_health(ReplicaHealth::Reseeding);
        cell.set_health(ReplicaHealth::Healthy);
        cell.set_health(ReplicaHealth::Degraded);
        assert_eq!(cell.degraded_marks(), 2);
    }

    #[test]
    fn watermark_is_monotonic_and_wakes_waiters() {
        let wm = Watermark::new(3);
        assert_eq!(wm.current(), 3);
        wm.advance_to(1);
        assert_eq!(wm.current(), 3, "never moves backward");
        assert!(wm.wait_for(3, Duration::ZERO));
        assert!(!wm.wait_for(4, Duration::from_millis(5)));

        let wm = std::sync::Arc::new(Watermark::new(0));
        let waiter = std::thread::spawn({
            let wm = std::sync::Arc::clone(&wm);
            move || wm.wait_for(2, Duration::from_secs(10))
        });
        wm.advance_to(2);
        assert!(waiter.join().unwrap());
    }
}
