//! # Durability — the segmented write-ahead log and crash recovery
//!
//! Every epoch a [`crate::engine::GraphStore`] publishes used to live
//! only in process memory. This module makes the update history outlive
//! the process: a **write-ahead log** of the same
//! [`crate::cluster::LogRecord`]s the replication channel carries
//! (`csag-updates v1` scripts framed per epoch), persisted *before* the
//! batch publishes, plus **checkpoint** snapshots of the graph so
//! replay is bounded by the delta since the last checkpoint.
//!
//! The moving parts:
//!
//! * [`Wal`] — the append-side: segmented files of checksummed frames
//!   (byte layer in [`csag_graph::wal`]), a configurable
//!   [`FsyncPolicy`] (`always` / `every_n` / `never`), size-triggered
//!   segment rotation, and periodic checkpoints that prune fully
//!   covered segments.
//! * [`GraphStore::recover`](crate::engine::GraphStore::recover) /
//!   [`RecoveryReport`] — the replay side: load the newest loadable
//!   checkpoint, re-apply every logged batch through the ordinary
//!   `apply` path (so the **epoch = batches applied** invariant makes
//!   the recovered store byte-identical to the pre-crash one at the
//!   recovered epoch), truncate a torn tail instead of failing, and
//!   refuse — with a typed error — anything a crash could not have
//!   produced.
//! * [`FaultPlan`] — a deterministic fault-injection seam threaded
//!   through the WAL writer and the socket
//!   [`crate::service::Transport`]: scripted append I/O errors, torn
//!   final records, fsync failures, and connection drops at chosen
//!   request indices, so the crash paths run under plain `cargo test`.
//!
//! # Degradation contract
//!
//! When an append cannot be made durable the write is rejected *before*
//! the graph is touched — the store keeps serving reads at the last
//! durable epoch and surfaces
//! [`CsagError::DurabilityUnavailable`](crate::engine::CsagError::DurabilityUnavailable)
//! (wire kind `durability_unavailable`) to writers. A failed fsync or
//! an injected torn write additionally marks the log **degraded**
//! (sticky until recovery re-opens it), because the kernel page cache
//! is unknowable after a failed fsync.
//!
//! See `docs/durability.md` for the on-disk grammar and the full
//! recovery contract.
//!
//! ```
//! use csag::engine::{GraphStore, GraphUpdate};
//! use csag::datasets::paper_examples::figure1_imdb;
//!
//! let dir = std::env::temp_dir().join(format!("csag-wal-doc-{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&dir);
//! let (graph, q) = figure1_imdb();
//! let store = GraphStore::with_wal(graph, &dir).unwrap();
//! store.apply(&[GraphUpdate::AddEdge { u: q, v: 0 }]).unwrap();
//! drop(store); // "crash"
//!
//! let (recovered, report) = GraphStore::recover(&dir).unwrap();
//! assert_eq!(report.epoch, 1);
//! assert_eq!(recovered.published_epoch(), 1);
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

mod fault;
mod recover;
mod wal;

pub use fault::{AppendFault, FaultPlan};
pub use recover::RecoveryReport;
pub use wal::{DurabilityStatus, FsyncPolicy, Wal, WalConfig, WalError};

pub(crate) use recover::recover_store;
pub(crate) use wal::read_tail_records;

use std::path::Path;

/// `true` when `dir` already holds WAL state (at least one checkpoint),
/// i.e. [`crate::engine::GraphStore::recover`] will find something and
/// [`crate::engine::GraphStore::with_wal`] would refuse to clobber it.
pub fn wal_dir_initialized(dir: impl AsRef<Path>) -> bool {
    wal::list_checkpoints(dir.as_ref())
        .map(|c| !c.is_empty())
        .unwrap_or(false)
}
