//! Deterministic fault injection for the durability and transport
//! layers.
//!
//! A [`FaultPlan`] is a *script*: "fail the 3rd append", "tear the 5th
//! record after 17 bytes", "drop the connection serving the 40th
//! request". The WAL writer and the socket transport consult the plan
//! at well-defined points, each with its own monotone counter, so a
//! test exercises exactly the crash it wrote down — no timing, no
//! signals, no luck. The default plan ([`FaultPlan::none`]) injects
//! nothing and costs one atomic load per hook.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// What to do to one WAL append.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AppendFault {
    /// Fail the append with an I/O error before any byte is written
    /// (disk full, EIO). The write is rejected; the log stays clean.
    IoError,
    /// Write only the first `keep_bytes` bytes of the frame, then stop
    /// — a simulated crash mid-append. The log is left with a torn
    /// tail and marked degraded, exactly as if the process had died.
    Torn {
        /// How many bytes of the frame land on disk before the "crash".
        keep_bytes: usize,
    },
}

#[derive(Default)]
struct Plan {
    appends_seen: u64,
    fsyncs_seen: u64,
    requests_seen: u64,
    append_faults: HashMap<u64, AppendFault>,
    fsync_failures: HashSet<u64>,
    connection_drops: HashSet<u64>,
    injected: u64,
}

/// A shared, cloneable fault script: "fail the 3rd append", "tear the
/// 5th record after 17 bytes", "drop the connection serving the 40th
/// request" — consulted by the WAL writer and the socket transport at
/// well-defined points.
///
/// Indices are 0-based over each hook's own counter: append faults
/// count WAL append *attempts*, fsync failures count fsync *attempts*
/// (so they compose with [`super::FsyncPolicy::EveryN`]), connection
/// drops count requests parsed off sockets across all connections of
/// one transport.
#[derive(Clone, Default)]
pub struct FaultPlan {
    inner: Arc<Mutex<Plan>>,
    /// Fast path: hooks on hot paths skip the lock entirely when the
    /// plan is empty (the common production case).
    scripted: Arc<AtomicBool>,
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    fn script(self, f: impl FnOnce(&mut Plan)) -> Self {
        f(&mut self.inner.lock().unwrap_or_else(PoisonError::into_inner));
        self.scripted.store(true, Ordering::Release);
        self
    }

    /// Scripts an I/O error on the `index`-th WAL append attempt.
    pub fn fail_append_at(self, index: u64) -> Self {
        self.script(|p| {
            p.append_faults.insert(index, AppendFault::IoError);
        })
    }

    /// Scripts a torn write on the `index`-th WAL append attempt: only
    /// `keep_bytes` of the frame reach the file before the simulated
    /// crash.
    pub fn tear_append_at(self, index: u64, keep_bytes: usize) -> Self {
        self.script(|p| {
            p.append_faults
                .insert(index, AppendFault::Torn { keep_bytes });
        })
    }

    /// Scripts a failure of the `index`-th fsync attempt.
    pub fn fail_fsync_at(self, index: u64) -> Self {
        self.script(|p| {
            p.fsync_failures.insert(index);
        })
    }

    /// Scripts an abrupt connection drop when the transport has parsed
    /// its `index`-th request (0-based, counted across all connections).
    pub fn drop_connection_at_request(self, index: u64) -> Self {
        self.script(|p| {
            p.connection_drops.insert(index);
        })
    }

    /// WAL hook: the fault (if any) scripted for this append attempt.
    /// Advances the append counter.
    pub fn next_append(&self) -> Option<AppendFault> {
        if !self.scripted.load(Ordering::Acquire) {
            return None;
        }
        let mut p = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let i = p.appends_seen;
        p.appends_seen += 1;
        let fault = p.append_faults.remove(&i);
        if fault.is_some() {
            p.injected += 1;
        }
        fault
    }

    /// WAL hook: `true` when this fsync attempt is scripted to fail.
    /// Advances the fsync counter.
    pub fn next_fsync_fails(&self) -> bool {
        if !self.scripted.load(Ordering::Acquire) {
            return false;
        }
        let mut p = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let i = p.fsyncs_seen;
        p.fsyncs_seen += 1;
        let hit = p.fsync_failures.remove(&i);
        if hit {
            p.injected += 1;
        }
        hit
    }

    /// Transport hook: `true` when the connection serving this request
    /// is scripted to drop. Advances the request counter.
    pub fn next_request_drops(&self) -> bool {
        if !self.scripted.load(Ordering::Acquire) {
            return false;
        }
        let mut p = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let i = p.requests_seen;
        p.requests_seen += 1;
        let hit = p.connection_drops.remove(&i);
        if hit {
            p.injected += 1;
        }
        hit
    }

    /// How many faults have actually fired (tests assert the script
    /// ran, not just that nothing crashed).
    pub fn injected(&self) -> u64 {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .injected
    }
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let p = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        f.debug_struct("FaultPlan")
            .field("append_faults", &p.append_faults.len())
            .field("fsync_failures", &p.fsync_failures.len())
            .field("connection_drops", &p.connection_drops.len())
            .field("injected", &p.injected)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hooks_fire_exactly_at_scripted_indices() {
        let plan = FaultPlan::none()
            .fail_append_at(1)
            .tear_append_at(3, 5)
            .fail_fsync_at(0)
            .drop_connection_at_request(2);
        assert_eq!(plan.next_append(), None);
        assert_eq!(plan.next_append(), Some(AppendFault::IoError));
        assert_eq!(plan.next_append(), None);
        assert_eq!(
            plan.next_append(),
            Some(AppendFault::Torn { keep_bytes: 5 })
        );
        assert!(plan.next_fsync_fails());
        assert!(!plan.next_fsync_fails());
        assert!(!plan.next_request_drops());
        assert!(!plan.next_request_drops());
        assert!(plan.next_request_drops());
        assert_eq!(plan.injected(), 4);

        // The empty plan never fires and shares counters across clones.
        let none = FaultPlan::none();
        assert_eq!(none.clone().next_append(), None);
        assert!(!none.next_fsync_fails());
        assert_eq!(none.injected(), 0);
    }
}
