//! The replay side: rebuild a [`GraphStore`] from a WAL directory to
//! the exact pre-crash epoch.
//!
//! Recovery is three deterministic steps:
//!
//! 1. **Base**: load the newest *loadable* checkpoint (a crash mid-
//!    checkpoint leaves only a `.tmp` the scan ignores; a damaged
//!    checkpoint falls back to the previous one — the segments behind
//!    it were only pruned after a *successful* newer checkpoint, so
//!    coverage is intact).
//! 2. **Replay**: scan every segment in epoch order and re-apply each
//!    record through the ordinary [`GraphStore::apply`] path. Because
//!    **epoch = batches applied** (erroneous batches publish their
//!    prefix deterministically), the recovered store is byte-identical
//!    to the pre-crash store at the recovered epoch. A torn tail in the
//!    *final* segment is truncated on disk and reported, not fatal;
//!    anything a crash could not produce (mid-stream damage, epoch
//!    gaps) is a typed [`WalError::Corrupt`].
//! 3. **Re-open**: attach a fresh [`Wal`] positioned after the last
//!    replayed record (new appends start a new segment — nothing is
//!    ever written after a truncated tail).

use super::wal::{list_checkpoints, list_segments, Wal, WalConfig, WalError};
use crate::cluster::LogRecord;
use crate::engine::result::push_kv;
use crate::engine::GraphStore;
use csag_graph::wal::{scan, ScanEnd};
use std::path::Path;
use std::sync::Arc;

/// What one [`GraphStore::recover`] did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Epoch of the checkpoint replay started from.
    pub checkpoint_epoch: u64,
    /// Log records re-applied on top of the checkpoint.
    pub records_replayed: u64,
    /// The recovered (pre-crash durable) epoch.
    pub epoch: u64,
    /// `true` when a torn final record was detected by checksum and
    /// truncated away.
    pub torn_tail_truncated: bool,
    /// Bytes the torn-tail truncation removed.
    pub truncated_bytes: u64,
    /// Segment files scanned.
    pub segments_scanned: usize,
}

impl RecoveryReport {
    /// The report as one flat JSON object (printed by
    /// `csag serve --wal` / `csag update --wal` on recovery).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        push_kv(
            &mut s,
            "checkpoint_epoch",
            &self.checkpoint_epoch.to_string(),
        );
        s.push(',');
        push_kv(
            &mut s,
            "records_replayed",
            &self.records_replayed.to_string(),
        );
        s.push(',');
        push_kv(&mut s, "epoch", &self.epoch.to_string());
        s.push(',');
        push_kv(
            &mut s,
            "torn_tail_truncated",
            if self.torn_tail_truncated {
                "true"
            } else {
                "false"
            },
        );
        s.push(',');
        push_kv(&mut s, "truncated_bytes", &self.truncated_bytes.to_string());
        s.push(',');
        push_kv(
            &mut s,
            "segments_scanned",
            &self.segments_scanned.to_string(),
        );
        s.push('}');
        s
    }
}

/// Rebuilds a store from `dir` (see the [module docs](self)) and
/// re-attaches a writable WAL at the tail.
pub(crate) fn recover_store(
    dir: &Path,
    config: WalConfig,
) -> Result<(GraphStore, RecoveryReport), WalError> {
    let checkpoints = list_checkpoints(dir)?;
    if checkpoints.is_empty() {
        return Err(WalError::NotInitialized { dir: dir.into() });
    }
    // Newest loadable checkpoint wins; damaged ones fall back.
    let mut base = None;
    let mut last_failure: Option<WalError> = None;
    for (epoch, path) in checkpoints.iter().rev() {
        match csag_graph::io::load_graph(path) {
            Ok(graph) => {
                base = Some((*epoch, graph));
                break;
            }
            Err(e) => {
                last_failure = Some(WalError::Corrupt {
                    path: path.clone(),
                    offset: 0,
                    reason: format!("unloadable checkpoint: {e}"),
                });
            }
        }
    }
    let Some((checkpoint_epoch, graph)) = base else {
        return Err(last_failure.expect("non-empty checkpoint list"));
    };

    let mut store = GraphStore::from_arc_at(Arc::new(graph), checkpoint_epoch);
    let mut report = RecoveryReport {
        checkpoint_epoch,
        epoch: checkpoint_epoch,
        ..RecoveryReport::default()
    };

    let segments = list_segments(dir)?;
    report.segments_scanned = segments.len();
    let mut expected = checkpoint_epoch + 1;
    for (i, (_, path)) in segments.iter().enumerate() {
        let bytes = std::fs::read(path).map_err(|e| WalError::Io {
            context: format!("reading segment {}", path.display()),
            message: e.to_string(),
        })?;
        let scanned = scan(&bytes).map_err(|e| WalError::Corrupt {
            path: path.clone(),
            offset: e.offset as u64,
            reason: e.reason,
        })?;
        if let ScanEnd::Torn { offset, reason } = &scanned.end {
            // Only the end of the *last* segment can be torn — rotation
            // never appends to a closed segment again.
            if i + 1 != segments.len() {
                return Err(WalError::Corrupt {
                    path: path.clone(),
                    offset: *offset as u64,
                    reason: format!("torn frame in a non-final segment: {reason}"),
                });
            }
            let file = std::fs::OpenOptions::new()
                .write(true)
                .open(path)
                .map_err(|e| WalError::Io {
                    context: format!("truncating torn tail of {}", path.display()),
                    message: e.to_string(),
                })?;
            file.set_len(*offset as u64).map_err(|e| WalError::Io {
                context: format!("truncating torn tail of {}", path.display()),
                message: e.to_string(),
            })?;
            let _ = file.sync_data();
            report.torn_tail_truncated = true;
            report.truncated_bytes = (bytes.len() - offset) as u64;
        }
        for (off, body) in scanned.frames {
            let corrupt = |reason: String| WalError::Corrupt {
                path: path.clone(),
                offset: off as u64,
                reason,
            };
            let text = std::str::from_utf8(body)
                .map_err(|_| corrupt("record body is not UTF-8".into()))?;
            let record = LogRecord::parse_wire(text).map_err(&corrupt)?;
            if record.epoch <= report.epoch {
                // Overlap below the checkpoint: its effects are already
                // in the base snapshot.
                continue;
            }
            if record.epoch != expected {
                return Err(corrupt(format!(
                    "epoch gap: expected record {expected}, found {}",
                    record.epoch
                )));
            }
            // Replaying an erroneous batch reproduces the same published
            // prefix (and the same error) the primary saw — replication
            // semantics, not a failure.
            let _ = store.apply(&record.updates);
            if store.published_epoch() != record.epoch {
                return Err(corrupt(format!(
                    "replaying record {} left the store at epoch {}",
                    record.epoch,
                    store.published_epoch()
                )));
            }
            expected += 1;
            report.records_replayed += 1;
            report.epoch = record.epoch;
        }
    }

    let wal = Wal::reopen(dir, config, report.epoch, checkpoint_epoch);
    store.attach_wal(wal);
    Ok((store, report))
}
