//! The append side of the durable update log: segmented files of
//! checksummed [`LogRecord`] frames, fsync policy, rotation, and
//! checkpointing. See the [module docs](super) for the big picture and
//! `docs/durability.md` for the on-disk grammar.

use super::fault::{AppendFault, FaultPlan};
use crate::cluster::LogRecord;
use crate::engine::result::{json_string, push_kv};
use csag_graph::AttributedGraph;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, PoisonError};

/// When appended records are flushed to stable storage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every append: an acknowledged write survives any
    /// crash. The default.
    Always,
    /// `fsync` after every N appends (and on rotation): a crash loses
    /// at most the last N−1 acknowledged batches — recovery still
    /// reaches a *consistent* earlier epoch, never a wrong graph.
    EveryN(u64),
    /// Never `fsync`; the OS flushes when it pleases. Fastest, loses
    /// the most on a crash, still torn-write safe.
    Never,
}

/// Tuning for a [`Wal`].
#[derive(Clone, Debug)]
pub struct WalConfig {
    /// Flush policy for appended records.
    pub fsync: FsyncPolicy,
    /// Rotate to a fresh segment once the current one reaches this many
    /// bytes (0 disables rotation).
    pub segment_bytes: u64,
    /// Write a checkpoint snapshot every this many epochs, bounding
    /// replay to the delta since the last one (0 disables periodic
    /// checkpoints; the epoch-0 checkpoint is always written).
    pub checkpoint_every: u64,
    /// Deterministic fault script (tests); [`FaultPlan::none`] in
    /// production.
    pub faults: FaultPlan,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            fsync: FsyncPolicy::Always,
            segment_bytes: 1 << 20,
            checkpoint_every: 64,
            faults: FaultPlan::none(),
        }
    }
}

/// Why the durability layer refused an operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalError {
    /// An I/O operation failed (the write it belonged to was rejected;
    /// the log file was rolled back to the previous record boundary).
    Io {
        /// What the WAL was doing.
        context: String,
        /// The underlying OS error.
        message: String,
    },
    /// Bytes on disk that no crash could have produced: damaged
    /// segments, an epoch gap, an unparsable record with a valid
    /// checksum. Recovery refuses to guess.
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// Byte offset of the defect within it.
        offset: u64,
        /// What was wrong.
        reason: String,
    },
    /// The directory holds no WAL state to recover from.
    NotInitialized {
        /// The directory that was probed.
        dir: PathBuf,
    },
    /// The directory already holds WAL state;
    /// [`crate::engine::GraphStore::with_wal`] refuses to clobber it —
    /// use [`crate::engine::GraphStore::recover`] instead.
    AlreadyInitialized {
        /// The directory that was probed.
        dir: PathBuf,
    },
    /// The log is degraded (a failed fsync or an injected crash left
    /// the tail unknowable): appends are refused until recovery
    /// re-opens the directory. Reads are unaffected.
    Degraded {
        /// Why the log degraded.
        reason: String,
    },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io { context, message } => write!(f, "wal {context}: {message}"),
            WalError::Corrupt {
                path,
                offset,
                reason,
            } => write!(
                f,
                "corrupt wal: {} at byte {offset}: {reason}",
                path.display()
            ),
            WalError::NotInitialized { dir } => {
                write!(f, "no wal state in {}", dir.display())
            }
            WalError::AlreadyInitialized { dir } => write!(
                f,
                "{} already holds wal state; recover it instead of re-initializing",
                dir.display()
            ),
            WalError::Degraded { reason } => write!(f, "wal degraded: {reason}"),
        }
    }
}

impl std::error::Error for WalError {}

fn io_err(context: impl Into<String>, e: std::io::Error) -> WalError {
    WalError::Io {
        context: context.into(),
        message: e.to_string(),
    }
}

/// Observable counters of a store's WAL
/// ([`crate::engine::GraphStore::wal_status`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DurabilityStatus {
    /// `Some(reason)` when the log refuses appends (read-only mode).
    pub degraded: Option<String>,
    /// Records successfully appended since open.
    pub appends: u64,
    /// fsync attempts since open.
    pub fsyncs: u64,
    /// Segment rotations since open.
    pub rotations: u64,
    /// Checkpoints successfully written since open.
    pub checkpoints: u64,
    /// Checkpoint attempts that failed (tolerated: the WAL still covers
    /// every epoch; replay is just longer).
    pub checkpoint_failures: u64,
    /// Epoch of the newest durable checkpoint.
    pub last_checkpoint_epoch: u64,
    /// Epoch of the last appended record (the durable high-watermark
    /// under [`FsyncPolicy::Always`]).
    pub last_epoch: u64,
}

impl DurabilityStatus {
    /// The status as one flat JSON object (for `csag serve --wal`
    /// observability lines).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        push_kv(
            &mut s,
            "degraded",
            &self
                .degraded
                .as_deref()
                .map(json_string)
                .unwrap_or_else(|| "null".into()),
        );
        for (key, value) in [
            ("appends", self.appends),
            ("fsyncs", self.fsyncs),
            ("rotations", self.rotations),
            ("checkpoints", self.checkpoints),
            ("checkpoint_failures", self.checkpoint_failures),
            ("last_checkpoint_epoch", self.last_checkpoint_epoch),
            ("last_epoch", self.last_epoch),
        ] {
            s.push(',');
            push_kv(&mut s, key, &value.to_string());
        }
        s.push('}');
        s
    }
}

/// Mutable writer state, one lock (appends already serialize on the
/// store's update mutex; this lock only guards direct `Wal` use).
struct WalState {
    /// The open segment file and its path, if any append has happened
    /// since open/rotation.
    segment: Option<(File, PathBuf)>,
    /// First epoch the open segment holds (its filename stem).
    segment_start: u64,
    segment_len: u64,
    status: DurabilityStatus,
    /// Appends since the last successful fsync (drives
    /// [`FsyncPolicy::EveryN`]).
    unsynced: u64,
}

/// The segmented write-ahead log writer. Created through
/// [`crate::engine::GraphStore::with_wal`] /
/// [`crate::engine::GraphStore::recover`]; the store appends each batch
/// here *before* publishing it.
pub struct Wal {
    dir: PathBuf,
    config: WalConfig,
    state: Mutex<WalState>,
}

pub(crate) fn segment_name(start_epoch: u64) -> String {
    format!("wal-{start_epoch:020}.log")
}

pub(crate) fn checkpoint_name(epoch: u64) -> String {
    format!("checkpoint-{epoch:020}.graph")
}

/// Numeric stem of `prefix-<NNN>.<ext>` filenames, used to sort
/// segments and checkpoints by epoch.
fn parse_stem(name: &str, prefix: &str, ext: &str) -> Option<u64> {
    name.strip_prefix(prefix)?
        .strip_suffix(ext)?
        .parse::<u64>()
        .ok()
}

fn list_dir(dir: &Path, prefix: &str, ext: &str) -> Result<Vec<(u64, PathBuf)>, WalError> {
    let mut out = Vec::new();
    let entries =
        std::fs::read_dir(dir).map_err(|e| io_err(format!("reading {}", dir.display()), e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_err("reading directory entry", e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(epoch) = parse_stem(name, prefix, ext) {
            out.push((epoch, entry.path()));
        }
    }
    out.sort_unstable_by_key(|&(epoch, _)| epoch);
    Ok(out)
}

pub(crate) fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, WalError> {
    list_dir(dir, "wal-", ".log")
}

pub(crate) fn list_checkpoints(dir: &Path) -> Result<Vec<(u64, PathBuf)>, WalError> {
    list_dir(dir, "checkpoint-", ".graph")
}

impl Wal {
    /// Initializes a fresh WAL in `dir` (created if missing) and writes
    /// the epoch-0 checkpoint of `graph` — the base every recovery
    /// starts from.
    ///
    /// # Errors
    /// [`WalError::AlreadyInitialized`] when `dir` holds WAL state;
    /// [`WalError::Io`] when the directory or checkpoint cannot be
    /// written.
    pub(crate) fn create(
        dir: &Path,
        config: WalConfig,
        graph: &AttributedGraph,
        epoch: u64,
    ) -> Result<Wal, WalError> {
        std::fs::create_dir_all(dir)
            .map_err(|e| io_err(format!("creating {}", dir.display()), e))?;
        if !list_checkpoints(dir)?.is_empty() || !list_segments(dir)?.is_empty() {
            return Err(WalError::AlreadyInitialized { dir: dir.into() });
        }
        let wal = Wal {
            dir: dir.into(),
            config,
            state: Mutex::new(WalState {
                segment: None,
                segment_start: epoch + 1,
                segment_len: 0,
                status: DurabilityStatus {
                    last_checkpoint_epoch: epoch,
                    last_epoch: epoch,
                    ..DurabilityStatus::default()
                },
                unsynced: 0,
            }),
        };
        {
            let mut st = wal.state.lock().unwrap_or_else(PoisonError::into_inner);
            write_checkpoint(&wal.dir, graph, epoch)?;
            st.status.checkpoints = 1;
        }
        Ok(wal)
    }

    /// Re-opens a recovered directory for appending. The next record
    /// starts a fresh segment — nothing is ever appended after a
    /// truncated tail.
    pub(crate) fn reopen(
        dir: &Path,
        config: WalConfig,
        last_epoch: u64,
        last_checkpoint_epoch: u64,
    ) -> Wal {
        Wal {
            dir: dir.into(),
            config,
            state: Mutex::new(WalState {
                segment: None,
                segment_start: last_epoch + 1,
                segment_len: 0,
                status: DurabilityStatus {
                    last_checkpoint_epoch,
                    last_epoch,
                    ..DurabilityStatus::default()
                },
                unsynced: 0,
            }),
        }
    }

    /// The directory this WAL persists to.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Current counters.
    pub fn status(&self) -> DurabilityStatus {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .status
            .clone()
    }

    /// Appends one record durably (write → per-policy fsync), rotating
    /// segments as configured. Called by the store *before* the batch
    /// is applied, so a failure here rejects the write with the graph
    /// untouched.
    ///
    /// # Errors
    /// * [`WalError::Degraded`] — the log already refused durability
    ///   (sticky), or this append's fsync failed / was scripted to tear
    ///   (which *makes* it sticky).
    /// * [`WalError::Io`] — the write failed cleanly; the segment was
    ///   rolled back to the previous record boundary and the log stays
    ///   usable (disk-full may clear).
    pub(crate) fn append(&self, record: &LogRecord) -> Result<(), WalError> {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(reason) = &st.status.degraded {
            return Err(WalError::Degraded {
                reason: reason.clone(),
            });
        }
        let bytes = csag_graph::wal::frame(record.to_wire().as_bytes());
        let fault = self.config.faults.next_append();
        if fault == Some(AppendFault::IoError) {
            return Err(WalError::Io {
                context: format!("append epoch {}", record.epoch),
                message: "injected I/O error".into(),
            });
        }

        // Rotate before writing so a record is never split across
        // segments.
        if self.config.segment_bytes > 0
            && st.segment.is_some()
            && st.segment_len >= self.config.segment_bytes
        {
            if let Some((old, path)) = st.segment.take() {
                if !matches!(self.config.fsync, FsyncPolicy::Never) {
                    old.sync_data().map_err(|e| {
                        io_err(format!("syncing full segment {}", path.display()), e)
                    })?;
                    st.unsynced = 0;
                }
            }
            st.segment_start = record.epoch;
            st.segment_len = 0;
            st.status.rotations += 1;
        }
        if st.segment.is_none() {
            let path = self.dir.join(segment_name(st.segment_start));
            let file = OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .map_err(|e| io_err(format!("opening segment {}", path.display()), e))?;
            st.segment = Some((file, path));
        }
        let pre_len = st.segment_len;
        // Split borrows: the file handle lives in the same state struct
        // as the counters the tail of this function updates.
        let WalState {
            segment,
            segment_len,
            status,
            unsynced,
            ..
        } = &mut *st;
        let (file, _path) = segment.as_mut().expect("segment just opened");

        if let Some(AppendFault::Torn { keep_bytes }) = fault {
            // Simulated crash mid-append: part of the frame lands, then
            // the log goes dark exactly like the process died.
            let keep = keep_bytes.min(bytes.len());
            let _ = file.write_all(&bytes[..keep]);
            let _ = file.sync_data();
            let reason = format!(
                "injected torn write: {keep} of {} bytes of epoch {}",
                bytes.len(),
                record.epoch
            );
            status.degraded = Some(reason.clone());
            return Err(WalError::Degraded { reason });
        }

        if let Err(e) = file.write_all(&bytes) {
            // Roll back to the record boundary so a retry (or recovery)
            // never sees a partial frame; the log itself stays usable.
            let _ = file.set_len(pre_len);
            return Err(io_err(format!("append epoch {}", record.epoch), e));
        }
        *segment_len += bytes.len() as u64;
        *unsynced += 1;

        let sync_now = match self.config.fsync {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => *unsynced >= n.max(1),
            FsyncPolicy::Never => false,
        };
        if sync_now {
            status.fsyncs += 1;
            let outcome = if self.config.faults.next_fsync_fails() {
                Err("injected fsync failure".to_string())
            } else {
                file.sync_data().map_err(|e| e.to_string())
            };
            if let Err(message) = outcome {
                // After a failed fsync the page cache is unknowable
                // (the kernel may have dropped the dirty pages): roll
                // the file back best-effort and refuse further appends
                // until recovery re-reads what actually landed.
                let _ = file.set_len(pre_len);
                *segment_len = pre_len;
                let reason = format!("fsync failed: {message}");
                status.degraded = Some(reason.clone());
                return Err(WalError::Degraded { reason });
            }
            *unsynced = 0;
        }
        status.appends += 1;
        status.last_epoch = record.epoch;
        Ok(())
    }

    /// Raw bytes of the newest durable checkpoint, with its epoch — the
    /// snapshot-shipping payload for `csag-repl v1`. The file on disk is
    /// already the `csag-graph v1` encoding, so replication streams it
    /// verbatim instead of re-serializing the engine.
    ///
    /// # Errors
    /// [`WalError::NotInitialized`] when no checkpoint exists;
    /// [`WalError::Io`] when the file cannot be read.
    pub fn checkpoint_bytes(&self) -> Result<(u64, Vec<u8>), WalError> {
        let checkpoints = list_checkpoints(&self.dir)?;
        let Some((epoch, path)) = checkpoints.last() else {
            return Err(WalError::NotInitialized {
                dir: self.dir.clone(),
            });
        };
        let bytes = std::fs::read(path)
            .map_err(|e| io_err(format!("reading checkpoint {}", path.display()), e))?;
        Ok((*epoch, bytes))
    }

    /// Writes a checkpoint of `graph` at `epoch` if the configured
    /// interval has elapsed, pruning segments the checkpoint fully
    /// covers. A checkpoint failure is *tolerated* (counted, nothing
    /// pruned): the log still covers every epoch, replay is just
    /// longer.
    pub(crate) fn maybe_checkpoint(&self, graph: &AttributedGraph, epoch: u64) {
        let every = self.config.checkpoint_every;
        {
            let st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
            if every == 0 || epoch < st.status.last_checkpoint_epoch + every {
                return;
            }
        }
        let _ = self.checkpoint(graph, epoch);
    }

    /// Forces a checkpoint of `graph` at `epoch` and prunes segments
    /// whose records all predate it.
    ///
    /// # Errors
    /// [`WalError::Io`] when the snapshot cannot be written durably
    /// (the failure is also counted in
    /// [`DurabilityStatus::checkpoint_failures`]; the WAL keeps
    /// working).
    pub(crate) fn checkpoint(&self, graph: &AttributedGraph, epoch: u64) -> Result<(), WalError> {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        match write_checkpoint(&self.dir, graph, epoch) {
            Ok(()) => {
                st.status.checkpoints += 1;
                st.status.last_checkpoint_epoch = epoch;
            }
            Err(e) => {
                st.status.checkpoint_failures += 1;
                return Err(e);
            }
        }
        // Prune: segment i covers epochs [start_i, start_{i+1}), so it
        // is dead once the *next* segment starts at or below epoch+1.
        // The open segment (and the newest one) always survives.
        if let Ok(segments) = list_segments(&self.dir) {
            for pair in segments.windows(2) {
                let (_, ref path) = pair[0];
                let (next_start, _) = pair[1];
                let open = st
                    .segment
                    .as_ref()
                    .is_some_and(|(_, open_path)| open_path == path);
                if next_start <= epoch + 1 && !open {
                    let _ = std::fs::remove_file(path);
                }
            }
        }
        Ok(())
    }
}

/// Read-only tail read for replication catch-up: the contiguous run of
/// records with epochs in `(after, upto]`, or `None` when the segments
/// on disk cannot prove that run (pruned below `after`, torn mid-run,
/// unparsable, gapped). Unlike recovery this never truncates anything —
/// the primary is alive and still appending; the caller falls back to
/// snapshot shipping on `None`.
///
/// Reading concurrently with the writer is safe up to `upto`: every
/// frame with epoch ≤ `upto` was fully written before `upto` was
/// published, and appends go straight through `write_all` (no
/// user-space buffering). A trailing partial frame from an in-flight
/// append only affects epochs > `upto`, which the contiguity check
/// ignores.
pub(crate) fn read_tail_records(dir: &Path, after: u64, upto: u64) -> Option<Vec<LogRecord>> {
    if upto <= after {
        return Some(Vec::new());
    }
    let segments = list_segments(dir).ok()?;
    let mut out = Vec::new();
    let mut expected = after + 1;
    'segments: for (_, path) in &segments {
        let bytes = std::fs::read(path).ok()?;
        let scanned = csag_graph::wal::scan(&bytes).ok()?;
        for (_, body) in scanned.frames {
            let text = std::str::from_utf8(body).ok()?;
            let record = LogRecord::parse_wire(text).ok()?;
            if record.epoch <= after {
                continue;
            }
            if record.epoch != expected {
                return None;
            }
            out.push(record);
            expected += 1;
            if expected > upto {
                break 'segments;
            }
        }
    }
    if expected > upto {
        Some(out)
    } else {
        None
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        // Clean shutdown: flush whatever EveryN/Never left unsynced.
        let st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some((file, _)) = st.segment.as_ref() {
            let _ = file.sync_data();
        }
    }
}

/// Writes `checkpoint-<epoch>.graph` atomically: temp file → fsync →
/// rename (→ best-effort directory sync). A crash mid-write leaves only
/// a `.tmp` that recovery ignores.
fn write_checkpoint(dir: &Path, graph: &AttributedGraph, epoch: u64) -> Result<(), WalError> {
    let final_path = dir.join(checkpoint_name(epoch));
    let tmp_path = dir.join(format!("{}.tmp", checkpoint_name(epoch)));
    let context = format!("writing checkpoint {}", final_path.display());
    let file = File::create(&tmp_path).map_err(|e| io_err(&context, e))?;
    csag_graph::io::write_graph(graph, &file).map_err(|e| io_err(&context, e))?;
    file.sync_all().map_err(|e| io_err(&context, e))?;
    drop(file);
    std::fs::rename(&tmp_path, &final_path).map_err(|e| io_err(&context, e))?;
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}
