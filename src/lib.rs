//! # csag — Community Search on Attributed Graphs with Accuracy Guarantees
//!
//! A from-scratch Rust reproduction of *"Scalable Community Search with
//! Accuracy Guarantee on Attributed Graphs"* (ICDE 2024). The facade crate
//! re-exports the whole workspace:
//!
//! * [`graph`] — attributed homogeneous & heterogeneous graph storage,
//! * [`decomp`] — k-core / k-truss decomposition and maintenance,
//! * [`stats`] — Hoeffding bounds, bootstrap, Bag of Little Bootstraps,
//! * [`core`] — the paper's contribution: the q-centric metric, the exact
//!   algorithm with three pruning strategies, and the SEA
//!   sampling-estimation pipeline with its extensions,
//! * [`baselines`] — ACQ / ATC(LocATC) / VAC / E-VAC comparators,
//! * [`datasets`] — seeded synthetic stand-ins for the paper's datasets,
//! * [`eval`] — cross-method cohesiveness metrics and F1 scoring.
//!
//! ## Quick start
//!
//! ```
//! use csag::datasets::paper_examples::figure1_imdb;
//! use csag::core::distance::DistanceParams;
//! use csag::core::sea::{Sea, SeaParams};
//! use rand::SeedableRng;
//!
//! let (graph, q) = figure1_imdb();
//! let params = SeaParams::default().with_k(3);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(42);
//! let result = Sea::new(&graph, DistanceParams::default())
//!     .run(q, &params, &mut rng)
//!     .expect("a 3-core containing The Godfather exists");
//! assert!(result.community.contains(&q));
//! ```

pub use csag_baselines as baselines;
pub use csag_core as core;
pub use csag_datasets as datasets;
pub use csag_decomp as decomp;
pub use csag_eval as eval;
pub use csag_graph as graph;
pub use csag_stats as stats;
