//! # csag — Community Search on Attributed Graphs with Accuracy Guarantees
//!
//! A from-scratch Rust reproduction of *"Scalable Community Search with
//! Accuracy Guarantee on Attributed Graphs"* (ICDE 2024). The facade crate
//! ships the unified query engine and re-exports the whole workspace:
//!
//! * [`engine`] — **the public entry point**: a reusable, `Send + Sync`
//!   [`engine::Engine`] per graph, the unified [`engine::CommunityQuery`]
//!   builder covering every method, typed [`engine::CsagError`] failures,
//!   parallel batch execution, the evolving-graph
//!   [`engine::GraphStore`] (epoch-stamped snapshots over
//!   [`engine::GraphUpdate`] batches, with incremental decomposition
//!   maintenance and selective cache invalidation), and the
//!   [`engine::HeteroEngine`] meta-path projection seam,
//! * [`service`] — **the serving layer over the engine**: an
//!   admission-controlled [`service::Service`] with bounded queueing
//!   (overload sheds with typed `Overloaded` errors), priorities,
//!   per-request deadlines that *degrade* accuracy instead of timing
//!   out, coalescing of identical in-flight queries, serving metrics,
//!   the `csag-wire` JSON-lines protocol behind `csag serve`, and the
//!   pipelined socket transport ([`service::Transport`], csag-wire v2
//!   over TCP / unix-domain sockets — see `docs/wire-protocol.md`),
//! * [`durability`] — **crash safety**: a segmented, checksummed
//!   write-ahead log of update batches with configurable fsync policy,
//!   periodic checkpoints bounding replay, torn-tail tolerant recovery
//!   to the exact pre-crash epoch
//!   (`GraphStore::with_wal` / `GraphStore::recover`,
//!   `csag serve --wal <dir>`), graceful read-only degradation when the
//!   disk fails, and a deterministic fault-injection harness
//!   ([`durability::FaultPlan`]) — see `docs/durability.md`,
//! * [`cluster`] — **scale-out**: a [`cluster::Router`] that applies
//!   update batches to a primary [`engine::GraphStore`] and fans them
//!   out to N replica stores over a `csag-updates v1` replication log,
//!   load-balancing reads with epoch-consistency guarantees (a client
//!   may pin an epoch; pinned reads are only served by a store that has
//!   published it), plus replica health tracking with automatic
//!   reseed-from-primary recovery (`csag serve --replicas N`),
//! * [`graph`] — attributed homogeneous & heterogeneous graph storage,
//! * [`decomp`] — k-core / k-truss decomposition and maintenance,
//! * [`stats`] — Hoeffding bounds, bootstrap, Bag of Little Bootstraps,
//! * [`core`] — the paper's algorithms: the q-centric metric, the exact
//!   enumeration with three pruning strategies, and the SEA
//!   sampling-estimation pipeline with its extensions,
//! * [`baselines`] — ACQ / ATC(LocATC) / VAC / E-VAC comparators,
//! * [`datasets`] — seeded synthetic stand-ins for the paper's datasets,
//! * [`eval`] — cross-method cohesiveness metrics and F1 scoring.
//!
//! ## Quick start
//!
//! Build an [`engine::Engine`] once per graph, then run any number of
//! queries — exact, SEA (with its accuracy certificate), or a baseline —
//! through the same builder:
//!
//! ```
//! use csag::datasets::paper_examples::figure1_imdb;
//! use csag::engine::{CommunityQuery, Engine, Method};
//!
//! let (graph, q) = figure1_imdb();
//! let engine = Engine::new(graph);
//!
//! let result = engine
//!     .run(&CommunityQuery::new(Method::Sea, q).with_k(3).with_seed(42))
//!     .expect("a 3-core containing The Godfather exists");
//! assert!(result.community.contains(&q));
//! let cert = result.certificate.expect("SEA always reports its accuracy");
//! assert!(cert.moe >= 0.0);
//!
//! // The same engine serves batches (and concurrent callers):
//! let queries: Vec<_> = result.community[..2]
//!     .iter()
//!     .map(|&v| CommunityQuery::new(Method::Exact, v).with_k(3))
//!     .collect();
//! for outcome in engine.run_batch(&queries) {
//!     assert!(outcome.is_ok());
//! }
//! ```
//!
//! Failures are typed ([`engine::CsagError`]): invalid parameters,
//! unknown query nodes, a definitive "no community exists", and budget
//! exhaustion (which carries the best community found so far) are four
//! distinct cases instead of one `None`.

// Every public item of the facade crate must carry docs; CI promotes
// this (and every other rustdoc warning) to an error via
// RUSTDOCFLAGS="-D warnings".
#![warn(missing_docs)]

pub mod cluster;
pub mod durability;
pub mod engine;
pub mod service;

pub use csag_baselines as baselines;
pub use csag_core as core;
pub use csag_datasets as datasets;
pub use csag_decomp as decomp;
pub use csag_eval as eval;
pub use csag_graph as graph;
pub use csag_stats as stats;
