//! `csag` — command-line community search on attributed graphs.
//!
//! Every search command routes through the unified [`csag::engine`]: one
//! `Engine` per loaded graph, one `CommunityQuery` per run, typed errors
//! on stderr, and `--json` for machine-readable results.
//!
//! ```text
//! csag stats    <graph.txt>
//! csag query    <graph.txt> --method M --query <id> --k <k> [shared flags] [--json]
//! csag exact    <graph.txt> --query <id> --k <k> [--gamma G] [--truss] [--budget-ms MS] [--json]
//! csag sea      <graph.txt> --query <id> --k <k> [--gamma G] [--truss] [--error E]
//!                           [--confidence C] [--lambda L] [--seed S] [--size L H] [--json]
//! csag baseline <graph.txt> --method acq|atc|vac|evac --query <id> --k <k> [--gamma G] [--json]
//! csag generate --nodes N --communities C --seed S --out <graph.txt>
//! csag update   <graph.txt> --script <updates.txt> [--out <new.txt>] [--wal <dir>] [--json]
//! csag serve    <graph.txt> [--workers N] [--capacity N] [--replicas N] [--wal <dir>]
//!                           [--shards N [--shard-halo R]]
//!                           [--metrics] [--listen <addr>] [--uds <path>]
//!                           [--repl-listen <addr>] [--repl-uds <path>]
//! csag replica  [seed-graph.txt] --follow <addr> [--name N] [--listen <addr>] [--uds <path>]
//! csag serve-churn [--batches N] [--seed S] [--json]
//! csag wal-churn <graph.txt> --wal <dir> [--plan-out <plan.txt>] [--batches N]
//!                           [--seed S] [--sleep-ms MS]
//! csag demo     [--json]
//! ```
//!
//! Graph files use the `csag-graph v1` text format (see `csag::graph::io`);
//! update scripts use the `csag-updates v1` line format (see
//! `csag::graph::update::GraphUpdate::parse_line`). Without a socket
//! flag, `csag serve` reads `csag-wire v1` request lines on stdin and
//! writes one response line per request, in order, on stdout. With
//! `--listen <addr>` (TCP, port 0 for ephemeral) and/or `--uds <path>`
//! (unix-domain socket) it serves the pipelined `csag-wire v2` instead:
//! many concurrent connections, out-of-order responses matched by the
//! client-assigned `id`. Both versions share one request grammar and
//! response envelope (normative spec: `docs/wire-protocol.md`), and the
//! `"result"` object of a response is produced by the same serializer
//! as `csag query --json`.
//!
//! `--repl-listen` / `--repl-uds` additionally serve the `csag-repl v1`
//! replication protocol (normative spec: `docs/replication.md`): a
//! `csag replica` process in another OS process (or on another host)
//! follows the stream through `--follow <addr>`, stays in epoch
//! lockstep, and serves byte-identical answers from its own sockets.
//! In socket mode the primary's stdin doubles as a write feed — one
//! `csag-updates v1` line per batch, `applied <epoch>` echoed back.

use csag::datasets::generator::{generate, SyntheticConfig};
use csag::datasets::paper_examples::{figure1_imdb, FIGURE1_TITLES};
use csag::datasets::{random_updates, ChurnMix};
use csag::engine::{
    error_to_json, CommunityQuery, CommunityResult, CsagError, Engine, GraphStore, GraphUpdate,
    Method, UpdateReport,
};
use csag::graph::io::{load_graph, save_graph};
use csag::graph::stats::graph_stats;
use csag::graph::{AttributedGraph, GraphBuilder};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::process::exit;
use std::time::{Duration, Instant};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        usage();
        exit(2);
    };
    let result = match cmd.as_str() {
        "stats" => cmd_stats(&args[1..]),
        "query" => cmd_query(&args[1..]),
        "exact" => cmd_search(&args[1..], Method::Exact),
        "sea" => cmd_search(&args[1..], Method::Sea),
        "baseline" => cmd_baseline(&args[1..]),
        "generate" => cmd_generate(&args[1..]),
        "update" => cmd_update(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "replica" => cmd_replica(&args[1..]),
        "serve-churn" => cmd_serve_churn(&args[1..]),
        "wal-churn" => cmd_wal_churn(&args[1..]),
        "demo" => cmd_demo(&args[1..]),
        "help" | "--help" | "-h" => {
            usage();
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    if let Err(msg) = result {
        eprintln!("error: {msg}");
        exit(1);
    }
}

fn usage() {
    eprintln!(
        "csag — community search on attributed graphs\n\
         \n\
         commands:\n\
         \x20 stats    <graph.txt>                      graph statistics\n\
         \x20 query    <graph.txt> --method M --query Q --k K   any method through one command\n\
         \x20 exact    <graph.txt> --query Q --k K      exact CS-AG (δ-optimal community)\n\
         \x20 sea      <graph.txt> --query Q --k K      approximate CS-AG with accuracy guarantee\n\
         \x20 baseline <graph.txt> --method M ...       run acq | atc | vac | evac\n\
         \x20 generate --nodes N --communities C ...    write a synthetic attributed graph\n\
         \x20 update   <graph.txt> --script <u.txt>      apply a GraphUpdate batch via GraphStore\n\
         \x20 serve    <graph.txt>                       csag-wire service: v1 on stdin/stdout, or\n\
         \x20                                            pipelined v2 sockets via --listen / --uds\n\
         \x20 replica  [seed.txt] --follow <addr>        remote replica: follow a primary's --repl-listen\n\
         \x20                                            stream, serve byte-identical reads via --listen/--uds\n\
         \x20 serve-churn [--batches N]                  churn the paper's examples, verify vs fresh engines\n\
         \x20 wal-churn <graph.txt> --wal <dir>          churn a WAL-backed store (crash-recovery smoke driver)\n\
         \x20 demo                                       the paper's Figure-1 IMDB example\n\
         \n\
         common flags: --gamma G (0..1, default 0.5)  --truss  --seed S  --json\n\
         exact flags:  --budget-ms MS (stop early, report best found; unbounded by default)\n\
         sea flags:    --error E (default 0.02)  --confidence C (default 0.95)\n\
         \x20             --lambda L (default 0.2)  --size L H (size-bounded search)\n\
         update flags: --script <updates.txt> (csag-updates v1)  --out <new-graph.txt>\n\
         \x20             --wal <dir> (durably log the batch; recovers the dir first if initialized)\n\
         serve flags:  --workers N  --capacity N (admission bound)  --metrics (snapshot on exit)\n\
         \x20             --shards N (partition the graph into N shard stores behind the\n\
         \x20               scatter-gather router; --shard-halo R sets the ghost radius, default 1;\n\
         \x20               composes with --replicas, which then replicates per shard, and --wal)\n\
         \x20             --replicas N (replicated stores behind the epoch-consistent csag::cluster\n\
         \x20             router; reads balance, `\"epoch\"`-pinned reads stay consistent)\n\
         \x20             --wal <dir> (write-ahead log + checkpoints; an initialized dir is\n\
         \x20             recovered to the exact pre-crash epoch and announced as `recovered {{...}}`\n\
         \x20             before any `listening` line)\n\
         \x20             --listen <ip:port> (TCP csag-wire v2; port 0 = ephemeral, bound address\n\
         \x20             is printed as `listening tcp://...`)  --uds <path> (unix-domain socket)\n\
         \x20             --repl-listen <ip:port> / --repl-uds <path> (csag-repl v1 replication\n\
         \x20             endpoint for `csag replica` followers, printed as `repl-listening ...`;\n\
         \x20             in socket mode stdin becomes a csag-updates v1 write feed)\n\
         replica flags: --follow <addr> (tcp://host:port or a socket path; required)\n\
         \x20             --name N (member name on the primary)  --listen / --uds (serving sockets)\n\
         \x20             [seed-graph.txt] (skip the initial snapshot ship when you have the\n\
         \x20             primary's epoch-0 graph)\n\
         wal-churn flags: --wal <dir>  --plan-out <plan.txt> (every batch written+synced *before*\n\
         \x20             it is applied, so the plan covers the durable prefix after a crash)\n\
         \x20             --batches N  --seed S  --sleep-ms MS (pacing, so a killer lands mid-run)"
    );
}

/// Parses `--flag value` pairs and positional arguments.
struct Flags {
    positional: Vec<String>,
    named: HashMap<String, Vec<String>>,
}

fn parse_flags(args: &[String], arity: &HashMap<&str, usize>) -> Result<Flags, String> {
    let mut positional = Vec::new();
    let mut named: HashMap<String, Vec<String>> = HashMap::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            let n = *arity
                .get(name)
                .ok_or_else(|| format!("unknown flag --{name}"))?;
            let mut vals = Vec::with_capacity(n);
            for _ in 0..n {
                vals.push(
                    it.next()
                        .ok_or_else(|| format!("--{name} expects {n} value(s)"))?
                        .clone(),
                );
            }
            named.insert(name.to_string(), vals);
        } else {
            positional.push(a.clone());
        }
    }
    Ok(Flags { positional, named })
}

impl Flags {
    fn get<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String> {
        match self.named.get(name) {
            None => Ok(None),
            Some(vals) => vals[0]
                .parse()
                .map(Some)
                .map_err(|_| format!("--{name}: cannot parse `{}`", vals[0])),
        }
    }

    fn require<T: std::str::FromStr>(&self, name: &str) -> Result<T, String> {
        self.get(name)?
            .ok_or_else(|| format!("--{name} is required"))
    }

    fn has(&self, name: &str) -> bool {
        self.named.contains_key(name)
    }
}

fn common_arity() -> HashMap<&'static str, usize> {
    HashMap::from([
        ("query", 1),
        ("k", 1),
        ("gamma", 1),
        ("truss", 0),
        ("budget-ms", 1),
        ("error", 1),
        ("confidence", 1),
        ("lambda", 1),
        ("seed", 1),
        ("size", 2),
        ("method", 1),
        ("nodes", 1),
        ("communities", 1),
        ("out", 1),
        ("json", 0),
        ("script", 1),
        ("batches", 1),
        ("workers", 1),
        ("capacity", 1),
        ("replicas", 1),
        ("shards", 1),
        ("shard-halo", 1),
        ("metrics", 0),
        ("listen", 1),
        ("uds", 1),
        ("follow", 1),
        ("name", 1),
        ("repl-listen", 1),
        ("repl-uds", 1),
        ("wal", 1),
        ("plan-out", 1),
        ("sleep-ms", 1),
    ])
}

fn load(flags: &Flags) -> Result<AttributedGraph, String> {
    let path = flags
        .positional
        .first()
        .ok_or("a graph file is required (csag-graph v1 format)")?;
    load_graph(path).map_err(|e| format!("loading {path}: {e}"))
}

/// Builds the query shared by `exact` / `sea` / `baseline` from flags.
fn query_of(flags: &Flags, method: Method) -> Result<CommunityQuery, String> {
    let q: u32 = flags.require("query")?;
    let k: u32 = flags.require("k")?;
    let mut query = CommunityQuery::new(method, q).with_k(k);
    if flags.has("truss") {
        query = query.with_model(csag::decomp::CommunityModel::KTruss);
    }
    if let Some(g) = flags.get::<f64>("gamma")? {
        query = query.with_gamma(g);
    }
    if let Some(ms) = flags.get::<u64>("budget-ms")? {
        query = query.with_time_budget(Duration::from_millis(ms));
    }
    if let Some(e) = flags.get::<f64>("error")? {
        query = query.with_error_bound(e);
    }
    if let Some(c) = flags.get::<f64>("confidence")? {
        query = query.with_confidence(c);
    }
    if let Some(l) = flags.get::<f64>("lambda")? {
        query = query.with_lambda(l);
    }
    if let Some(s) = flags.get::<u64>("seed")? {
        query = query.with_seed(s);
    }
    if let Some(vals) = flags.named.get("size") {
        let l: usize = vals[0].parse().map_err(|_| "bad --size lower bound")?;
        let h: usize = vals[1].parse().map_err(|_| "bad --size upper bound")?;
        query = query.with_size_bound(l, h);
        if query.method == Method::Sea {
            query = query.with_method(Method::SeaSizeBounded);
        }
    }
    // Build-time validation: degenerate parameters die here with a
    // precise message (and, in `--json` mode, an error object on stdout),
    // before the graph is even touched.
    query.build().map_err(|e| {
        if flags.has("json") {
            println!("{}", error_to_json(&e));
        }
        e.to_string()
    })
}

fn print_community(g: &AttributedGraph, comm: &[u32]) {
    for &v in comm {
        let tokens: Vec<&str> = g
            .tokens(v)
            .iter()
            .filter_map(|&t| g.interner().name(t))
            .collect();
        println!(
            "  node {v:>6}  [{}]  {:?}",
            tokens.join(","),
            g.numeric_raw(v)
        );
    }
}

fn print_result(g: &AttributedGraph, res: &CommunityResult) {
    print!(
        "{}: community of {} nodes, δ = {:.6}",
        res.provenance.method,
        res.community.len(),
        res.delta
    );
    match &res.certificate {
        Some(c) if c.moe > 0.0 => print!(
            ", CI ± {:.4e} at {:.0}% (certified = {})",
            c.moe,
            c.confidence * 100.0,
            c.certified
        ),
        Some(_) => print!(" (δ-optimal)"),
        None => {
            if let Some(obj) = res.provenance.objective {
                print!(" (own objective {obj:.4})");
            }
        }
    }
    println!(
        "  [{:.1} ms: prepare {:.1} + search {:.1}]",
        res.timings.total.as_secs_f64() * 1000.0,
        res.timings.prepare.as_secs_f64() * 1000.0,
        res.timings.search.as_secs_f64() * 1000.0,
    );
    if res.provenance.rounds > 0 {
        println!(
            "  {} SEA round(s), {} candidate(s), sample {}/{}",
            res.provenance.rounds,
            res.provenance.candidates_examined,
            res.provenance.sample_size,
            res.provenance.population_size
        );
    }
    if res.provenance.states_explored > 0 {
        println!("  {} states explored", res.provenance.states_explored);
    }
    print_community(g, &res.community);
}

/// Runs a built query and renders the outcome (text or `--json`).
/// Exit status is consistent across both modes: success and budget
/// exhaustion *with* a best-effort partial exit 0; every other engine
/// error exits non-zero (in `--json` mode the error object still goes to
/// stdout, with the human-readable message on stderr).
fn run_and_render(g: AttributedGraph, query: &CommunityQuery, json: bool) -> Result<(), String> {
    let engine = Engine::new(g);
    let g = engine.graph();
    match engine.run(query) {
        Ok(res) => {
            if json {
                println!("{}", res.to_json());
            } else {
                print_result(g, &res);
            }
            Ok(())
        }
        Err(CsagError::BudgetExhausted { partial: Some(p) }) => {
            if json {
                let err = CsagError::BudgetExhausted { partial: Some(p) };
                println!("{}", error_to_json(&err));
                return Ok(());
            }
            println!(
                "budget exhausted after {} states — best found so far: {} nodes, δ = {:.6}",
                p.states_explored,
                p.community.len(),
                p.delta
            );
            print_community(g, &p.community);
            Ok(())
        }
        Err(err) => {
            if json {
                println!("{}", error_to_json(&err));
            }
            Err(err.to_string())
        }
    }
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &common_arity())?;
    let g = load(&flags)?;
    let s = graph_stats(&g);
    let engine = Engine::new(g);
    let coreness = engine.coreness();
    let kmax = coreness.iter().copied().max().unwrap_or(0);
    let kavg = coreness.iter().map(|&c| c as f64).sum::<f64>() / coreness.len().max(1) as f64;
    println!("nodes      {}", s.nodes);
    println!("edges      {}", s.edges);
    println!("d_max      {}", s.max_degree);
    println!("d_avg      {:.2}", s.avg_degree);
    println!("k_max      {kmax}");
    println!("k_avg      {kavg:.2}");
    println!("numeric dims {}", engine.graph().attrs().dims());
    Ok(())
}

fn cmd_search(args: &[String], method: Method) -> Result<(), String> {
    let flags = parse_flags(args, &common_arity())?;
    let g = load(&flags)?;
    let query = query_of(&flags, method)?;
    run_and_render(g, &query, flags.has("json"))
}

/// `csag query`: the unified search command — any method via `--method`
/// (the `exact` / `sea` / `baseline` commands are conveniences over
/// this). `--json` output is the one `CommunityResult` serializer, so
/// it byte-matches the `"result"` object of a `csag serve` response for
/// the same query (timings aside).
fn cmd_query(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &common_arity())?;
    let g = load(&flags)?;
    let method: String = flags.require("method")?;
    let method: Method = method.parse().map_err(|e: CsagError| e.to_string())?;
    let query = query_of(&flags, method)?;
    run_and_render(g, &query, flags.has("json"))
}

/// `csag serve`: the admission-controlled service on the wire. The
/// default mode speaks `csag-wire v1` over stdin/stdout — one request
/// line in, one response line out, strictly in order. With `--listen
/// <addr>` and/or `--uds <path>` it speaks the pipelined `csag-wire v2`
/// over real sockets instead: many concurrent connections, batched
/// admission, responses written out of order as computations finish and
/// matched by the client-assigned `id`. Either way every request goes
/// through the full `csag::service` path (admission, priorities,
/// deadlines, coalescing); malformed or shed lines answer with an
/// `"error"` envelope instead of killing the session. With `--metrics`
/// (stdin mode), a `csag-service-metrics-v1` snapshot is printed to
/// stdout after EOF (plus a `csag-cluster-metrics-v1` line when
/// `--replicas` is on; stderr always gets a one-line summary).
///
/// `--replicas N` fronts the store with the `csag::cluster` router: N
/// replica stores consume the primary's replication log, unpinned reads
/// balance across whichever are caught up, and a request carrying the
/// `"epoch"` wire key is only answered by a store that has published
/// that epoch.
///
/// `--shards N` partitions the graph into N shard stores behind the
/// `csag::cluster::shard` scatter-gather router (`--shard-halo R` sets
/// the ghost-vertex radius, default 1). Answers stay byte-identical to
/// a single store; pinned reads gate on the *cluster* epoch (published
/// only once every shard applied the batch). Composes with
/// `--replicas` (each shard gets its own replica set) and `--wal` (the
/// journal logs globally, the partition is recomputed at boot).
fn cmd_serve(args: &[String]) -> Result<(), String> {
    use csag::cluster::{ReplListener, Router, ShardedRouter};
    use csag::service::{parse_wire_request, rejection_to_json, response_to_json};
    use csag::service::{Service, ServiceConfig, Transport};
    use std::io::{BufRead, Write};
    use std::sync::Arc;

    let flags = parse_flags(args, &common_arity())?;
    // `--follow` turns this invocation into a replica: same flags, but
    // the store is fed by a primary's replication stream instead of
    // local writes.
    if flags.has("follow") {
        return cmd_replica(args);
    }
    let g = load(&flags)?;
    let mut config = ServiceConfig::default();
    if let Some(w) = flags.get::<usize>("workers")? {
        config = config.with_workers(w);
    }
    if let Some(c) = flags.get::<usize>("capacity")? {
        config = config.with_capacity(c);
    }
    let replicas = flags.get::<usize>("replicas")?.unwrap_or(0);
    let wal = flags.get::<String>("wal")?;
    let repl_listen = flags.get::<String>("repl-listen")?;
    let repl_uds = flags.get::<String>("repl-uds")?;
    // Offering replication requires the router's write path (remote
    // members hang off it), even with zero in-process replicas.
    let want_repl = repl_listen.is_some() || repl_uds.is_some();
    // With --wal, an already-initialized directory wins over the
    // positional graph: the server recovers to the exact pre-crash
    // epoch and announces it (`recovered {...}`) before any `listening`
    // line, so restart scripts can read the epoch they came back to.
    let shards = flags.get::<usize>("shards")?.unwrap_or(0);
    let shard_halo = flags.get::<u32>("shard-halo")?.unwrap_or(1);
    let mut repl_listeners = Vec::new();
    let service = if shards > 0 {
        if want_repl {
            return Err("--repl-listen/--repl-uds cannot front a sharded cluster; \
                 use --replicas N for per-shard replication"
                .to_string());
        }
        let sharded = match &wal {
            None => Arc::new(ShardedRouter::over_graph(g, shards, shard_halo, replicas)),
            Some(dir) => {
                if csag::durability::wal_dir_initialized(dir) {
                    let (router, report) =
                        ShardedRouter::recover(dir, shards, shard_halo, replicas)
                            .map_err(|e| format!("recovering wal {dir}: {e}"))?;
                    println!("recovered {}", report.to_json());
                    Arc::new(router)
                } else {
                    Arc::new(
                        ShardedRouter::with_wal(g, shards, shard_halo, replicas, dir)
                            .map_err(|e| format!("initializing wal {dir}: {e}"))?,
                    )
                }
            }
        };
        Service::over_shards(sharded, config)
    } else if replicas > 0 || want_repl {
        let router = match &wal {
            None => Arc::new(Router::over_graph(g, replicas)),
            Some(dir) => {
                if csag::durability::wal_dir_initialized(dir) {
                    let (router, report) = Router::recover(dir, replicas)
                        .map_err(|e| format!("recovering wal {dir}: {e}"))?;
                    println!("recovered {}", report.to_json());
                    Arc::new(router)
                } else {
                    Arc::new(
                        Router::with_wal(g, replicas, dir)
                            .map_err(|e| format!("initializing wal {dir}: {e}"))?,
                    )
                }
            }
        };
        // Replication endpoints announce themselves before the serving
        // `listening` lines, so scripts can hand followers the address
        // first.
        if let Some(addr) = &repl_listen {
            let l = ReplListener::bind_tcp(Arc::clone(&router), addr.as_str())
                .map_err(|e| format!("binding repl tcp {addr}: {e}"))?;
            println!("repl-listening {}", l.local_addr());
            repl_listeners.push(l);
        }
        if let Some(path) = &repl_uds {
            #[cfg(unix)]
            {
                let l = ReplListener::bind_uds(Arc::clone(&router), path)
                    .map_err(|e| format!("binding repl uds {path}: {e}"))?;
                println!("repl-listening {}", l.local_addr());
                repl_listeners.push(l);
            }
            #[cfg(not(unix))]
            {
                let _ = path;
                return Err("--repl-uds needs a unix platform".to_string());
            }
        }
        Service::over_cluster(router, config)
    } else {
        match &wal {
            None => Service::over_graph(g, config),
            Some(dir) => {
                let store = if csag::durability::wal_dir_initialized(dir) {
                    let (store, report) = GraphStore::recover(dir)
                        .map_err(|e| format!("recovering wal {dir}: {e}"))?;
                    println!("recovered {}", report.to_json());
                    store
                } else {
                    GraphStore::with_wal(g, dir)
                        .map_err(|e| format!("initializing wal {dir}: {e}"))?
                };
                Service::new(Arc::new(store), config)
            }
        }
    };

    // Socket mode: bind the requested transports, announce the bound
    // addresses on stdout (scripts read the ephemeral port from the
    // `listening tcp://...` line), and serve until killed.
    let listen = flags.get::<String>("listen")?;
    let uds = flags.get::<String>("uds")?;
    if listen.is_some() || uds.is_some() {
        let service = Arc::new(service);
        let mut transports = Vec::new();
        if let Some(addr) = listen {
            let t = Transport::bind_tcp(Arc::clone(&service), addr.as_str())
                .map_err(|e| format!("binding tcp {addr}: {e}"))?;
            println!("listening {}", t.local_addr());
            transports.push(t);
        }
        if let Some(path) = uds {
            #[cfg(unix)]
            {
                let t = Transport::bind_uds(Arc::clone(&service), &path)
                    .map_err(|e| format!("binding uds {path}: {e}"))?;
                println!("listening {}", t.local_addr());
                transports.push(t);
            }
            #[cfg(not(unix))]
            {
                let _ = path;
                return Err("--uds needs a unix platform".to_string());
            }
        }
        std::io::stdout()
            .flush()
            .map_err(|e| format!("writing stdout: {e}"))?;
        eprintln!(
            "serve: csag-wire v2 on {} transport(s) — pipelined, responses matched by id; \
             kill the process to stop",
            transports.len()
        );
        // Socket mode keeps stdin as a write feed: each `csag-updates
        // v1` line applies as a one-update batch through the serving
        // store (the router, when replicated — so remote followers see
        // it too), echoing `applied <epoch>` so drivers can pin reads
        // to what they just wrote. EOF closes the feed but the server
        // keeps serving until killed.
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            let line = line.map_err(|e| format!("reading stdin: {e}"))?;
            let text = line.trim();
            if text.is_empty() || text.starts_with('#') {
                continue;
            }
            let update = match GraphUpdate::parse_line(text) {
                Ok(u) => u,
                Err(e) => {
                    eprintln!("serve: ignoring malformed update line: {e}");
                    continue;
                }
            };
            let applied = if let Some(sharded) = service.shards() {
                sharded.apply(std::slice::from_ref(&update))
            } else if let Some(router) = service.cluster() {
                router.apply(std::slice::from_ref(&update))
            } else {
                service.store().apply(std::slice::from_ref(&update))
            };
            match applied {
                Ok(report) => println!("applied {}", report.epoch),
                Err(e) => eprintln!("serve: update feed batch failed: {e}"),
            }
            std::io::stdout()
                .flush()
                .map_err(|e| format!("writing stdout: {e}"))?;
        }
        if flags.has("metrics") {
            println!("{}", service.metrics().to_json());
            if let Some(router) = service.cluster() {
                println!("{}", router.metrics().to_json());
            } else if let Some(sharded) = service.shards() {
                println!("{}", sharded.metrics().to_json());
            }
            std::io::stdout()
                .flush()
                .map_err(|e| format!("writing stdout: {e}"))?;
        }
        eprintln!("serve: stdin feed closed; still serving — kill the process to stop");
        loop {
            std::thread::park();
        }
    }

    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut lines = 0usize;
    for (line_no, line) in stdin.lock().lines().enumerate() {
        let line = line.map_err(|e| format!("reading stdin: {e}"))?;
        if line.trim().is_empty() {
            continue;
        }
        lines += 1;
        let rendered = match parse_wire_request(&line, line_no) {
            Err(msg) => rejection_to_json(&line_no.to_string(), &CsagError::invalid(msg)),
            Ok(wire) => match service.submit(wire.request) {
                Err(err) => rejection_to_json(&wire.id, &err),
                Ok(ticket) => response_to_json(&wire.id, &ticket.wait()),
            },
        };
        writeln!(out, "{rendered}").map_err(|e| format!("writing stdout: {e}"))?;
    }
    let snapshot = service.metrics();
    if flags.has("metrics") {
        writeln!(out, "{}", snapshot.to_json()).map_err(|e| format!("writing stdout: {e}"))?;
        if let Some(router) = service.cluster() {
            writeln!(out, "{}", router.metrics().to_json())
                .map_err(|e| format!("writing stdout: {e}"))?;
        } else if let Some(sharded) = service.shards() {
            writeln!(out, "{}", sharded.metrics().to_json())
                .map_err(|e| format!("writing stdout: {e}"))?;
        }
    }
    eprintln!(
        "serve: {lines} request line(s) — admitted {}, shed {}, coalesced {}, \
         {} computation(s), warm-hit ratio {:.2}",
        snapshot.admitted,
        snapshot.shed,
        snapshot.coalesced,
        snapshot.executed,
        snapshot.warm_hit_ratio
    );
    Ok(())
}

/// `csag replica`: a remote replica process. Follows a primary's
/// `--repl-listen` / `--repl-uds` endpoint over `csag-repl v1` (an
/// optional positional graph seeds the store so the first handshake
/// can stream instead of shipping a snapshot), keeps its store in
/// epoch lockstep by applying the record stream, and serves reads over
/// its own `csag-wire v2` sockets — answers at epoch `E` are
/// byte-identical to the primary's at `E`. Prints `following <addr>
/// epoch <E>` once synced, then the usual `listening ...` lines.
/// Dropped connections reconnect (and reseed) forever; kill the
/// process to stop.
fn cmd_replica(args: &[String]) -> Result<(), String> {
    use csag::cluster::{Follower, FollowerConfig};
    use csag::service::{Service, ServiceConfig, Transport};
    use std::io::Write;
    use std::sync::Arc;

    let flags = parse_flags(args, &common_arity())?;
    let addr: String = flags.require("follow")?;
    let mut config = FollowerConfig::default();
    if let Some(name) = flags.get::<String>("name")? {
        config.name = name;
    }
    if let Some(path) = flags.positional.first() {
        let g = load_graph(path).map_err(|e| format!("loading {path}: {e}"))?;
        config.seed = Some(Arc::new(g));
    }
    let follower = Follower::start(&addr, config).map_err(|e| format!("following {addr}: {e}"))?;
    // Block until the first session syncs: clients connecting after the
    // `following` line never see the pre-replication empty store.
    while !(follower.synced() && follower.connected()) {
        std::thread::sleep(Duration::from_millis(5));
    }
    println!("following {addr} epoch {}", follower.epoch());

    let mut sconfig = ServiceConfig::default().with_epoch_wait(Duration::from_secs(5));
    if let Some(w) = flags.get::<usize>("workers")? {
        sconfig = sconfig.with_workers(w);
    }
    if let Some(c) = flags.get::<usize>("capacity")? {
        sconfig = sconfig.with_capacity(c);
    }
    let service = Arc::new(Service::new(Arc::clone(follower.store()), sconfig));

    let mut transports = Vec::new();
    if let Some(listen) = flags.get::<String>("listen")? {
        let t = Transport::bind_tcp(Arc::clone(&service), listen.as_str())
            .map_err(|e| format!("binding tcp {listen}: {e}"))?;
        println!("listening {}", t.local_addr());
        transports.push(t);
    }
    if let Some(path) = flags.get::<String>("uds")? {
        #[cfg(unix)]
        {
            let t = Transport::bind_uds(Arc::clone(&service), &path)
                .map_err(|e| format!("binding uds {path}: {e}"))?;
            println!("listening {}", t.local_addr());
            transports.push(t);
        }
        #[cfg(not(unix))]
        {
            let _ = path;
            return Err("--uds needs a unix platform".to_string());
        }
    }
    if transports.is_empty() {
        return Err("a replica serves csag-wire v2 sockets; pass --listen and/or --uds".into());
    }
    std::io::stdout()
        .flush()
        .map_err(|e| format!("writing stdout: {e}"))?;
    eprintln!(
        "replica: following {addr}, serving csag-wire v2 on {} transport(s); \
         kill the process to stop",
        transports.len()
    );
    loop {
        std::thread::park();
    }
}

fn cmd_baseline(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &common_arity())?;
    let g = load(&flags)?;
    let method: String = flags.require("method")?;
    let method: Method = method.parse().map_err(|e: CsagError| e.to_string())?;
    if !matches!(
        method,
        Method::Acq | Method::Atc | Method::Vac | Method::EVac
    ) {
        return Err(format!(
            "`{method}` is not a baseline; use the `exact` / `sea` commands"
        ));
    }
    let query = query_of(&flags, method)?;
    run_and_render(g, &query, flags.has("json"))
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &common_arity())?;
    let nodes: usize = flags.require("nodes")?;
    let communities: usize = flags.require("communities")?;
    let seed = flags.get::<u64>("seed")?.unwrap_or(0);
    let out: String = flags.require("out")?;
    let cfg = SyntheticConfig {
        nodes,
        communities,
        ..Default::default()
    };
    let (g, truth) = generate(&cfg, seed);
    save_graph(&g, &out).map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "wrote {out}: {} nodes, {} edges, {} planted communities",
        g.n(),
        g.m(),
        truth.len()
    );
    Ok(())
}

fn report_to_json(r: &UpdateReport) -> String {
    format!(
        "{{\"epoch\":{},\"edges_added\":{},\"edges_removed\":{},\"vertices_added\":{},\
         \"attributes_set\":{},\"noops\":{},\"coreness_changed\":{},\
         \"distance_tables_retained\":{},\"distance_tables_invalidated\":{}}}",
        r.epoch,
        r.edges_added,
        r.edges_removed,
        r.vertices_added,
        r.attributes_set,
        r.noops,
        r.coreness_changed,
        r.distance_tables_retained,
        r.distance_tables_invalidated
    )
}

/// `csag update`: apply a `csag-updates v1` script to a graph through the
/// evolving-graph store, report what changed, optionally save the new
/// snapshot. With `--wal <dir>` the batch is durably logged first (an
/// initialized directory is recovered before the batch applies; the
/// recovery report goes to stderr so `--json` stdout stays one object).
fn cmd_update(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &common_arity())?;
    let g = load(&flags)?;
    let script_path: String = flags.require("script")?;
    let script =
        std::fs::read_to_string(&script_path).map_err(|e| format!("reading {script_path}: {e}"))?;
    let updates = GraphUpdate::parse_script(&script).map_err(|e| format!("{script_path}: {e}"))?;

    let store = wal_backed_store(g, flags.get::<String>("wal")?.as_deref())?;
    let t = Instant::now();
    let report = store
        .apply(&updates)
        .map_err(|e| format!("applying updates: {e}"))?;
    let elapsed_ms = t.elapsed().as_secs_f64() * 1000.0;
    let snap = store.snapshot();
    if flags.has("json") {
        println!(
            "{{\"applied\":{},\"elapsed_ms\":{elapsed_ms:.3},\"nodes\":{},\"edges\":{},\
             \"report\":{}}}",
            updates.len(),
            snap.graph().n(),
            snap.graph().m(),
            report_to_json(&report)
        );
    } else {
        println!(
            "applied {} update(s) in {elapsed_ms:.2} ms → epoch {}: \
             +{} / -{} edges, +{} vertices, {} attribute change(s), {} no-op(s)",
            updates.len(),
            report.epoch,
            report.edges_added,
            report.edges_removed,
            report.vertices_added,
            report.attributes_set,
            report.noops
        );
        println!(
            "now {} nodes / {} edges; {} node(s) changed core number",
            snap.graph().n(),
            snap.graph().m(),
            report.coreness_changed
        );
    }
    if let Some(out) = flags.get::<String>("out")? {
        save_graph(snap.graph(), &out).map_err(|e| format!("writing {out}: {e}"))?;
        if !flags.has("json") {
            println!("updated graph written to {out}");
        }
    }
    Ok(())
}

/// A store for a write command: plain when `wal` is `None`; otherwise
/// WAL-backed — recovering the directory (report on stderr, so JSON
/// stdout stays clean) when it is already initialized, creating it
/// seeded from `g` when not.
fn wal_backed_store(g: AttributedGraph, wal: Option<&str>) -> Result<GraphStore, String> {
    match wal {
        None => Ok(GraphStore::new(g)),
        Some(dir) => {
            if csag::durability::wal_dir_initialized(dir) {
                let (store, report) =
                    GraphStore::recover(dir).map_err(|e| format!("recovering wal {dir}: {e}"))?;
                eprintln!("recovered {}", report.to_json());
                Ok(store)
            } else {
                GraphStore::with_wal(g, dir).map_err(|e| format!("initializing wal {dir}: {e}"))
            }
        }
    }
}

/// `csag wal-churn`: churn a WAL-backed store with seeded random update
/// batches. With `--plan-out` every batch is written (and fsynced) to
/// the plan file *before* it is applied, so after a `kill -9` the plan
/// covers at least every batch the log made durable — CI's crash-smoke
/// gate kills this mid-run, restarts with `csag serve --wal`, and
/// byte-diffs the recovered server's answers against a fresh engine fed
/// the plan's first `epoch` batches.
fn cmd_wal_churn(args: &[String]) -> Result<(), String> {
    use std::io::Write;

    let flags = parse_flags(args, &common_arity())?;
    let batches: usize = flags.get("batches")?.unwrap_or(64);
    let seed: u64 = flags.get("seed")?.unwrap_or(0xC0FFEE);
    let sleep_ms: u64 = flags.get("sleep-ms")?.unwrap_or(0);
    let dir: String = flags.require("wal")?;
    let g = load(&flags)?;
    let store = wal_backed_store(g, Some(&dir))?;

    let mut plan = match flags.get::<String>("plan-out")? {
        Some(p) => {
            let file = std::fs::File::create(&p).map_err(|e| format!("creating {p}: {e}"))?;
            Some(std::io::BufWriter::new(file))
        }
        None => None,
    };
    let start_epoch = store.published_epoch();
    let mut rng = StdRng::seed_from_u64(seed);
    for batch_no in 0..batches {
        let batch = random_updates(store.snapshot().graph(), &mut rng, 5, ChurnMix::MIXED);
        if let Some(out) = &mut plan {
            // Plan-before-apply: the `# batch` header and the batch's
            // csag-updates v1 lines hit the disk before the store (and
            // therefore the WAL) sees them.
            writeln!(out, "# batch {}", start_epoch + batch_no as u64 + 1)
                .map_err(|e| format!("writing plan: {e}"))?;
            for u in &batch {
                writeln!(out, "{}", u.to_line()).map_err(|e| format!("writing plan: {e}"))?;
            }
            out.flush().map_err(|e| format!("flushing plan: {e}"))?;
            out.get_ref()
                .sync_data()
                .map_err(|e| format!("syncing plan: {e}"))?;
        }
        store
            .apply(&batch)
            .map_err(|e| format!("batch {batch_no}: {e}"))?;
        if sleep_ms > 0 {
            std::thread::sleep(Duration::from_millis(sleep_ms));
        }
    }
    println!(
        "wal-churn: {batches} batch(es) applied → epoch {}",
        store.published_epoch()
    );
    Ok(())
}

/// The Figure 2(c)/Figure 3 example graph (γ = 0 queries, q = 5).
fn figure3_graph() -> (AttributedGraph, u32) {
    let mut b = GraphBuilder::new(1);
    for &x in &[1.0, 0.7, 0.6, 0.6, 0.5, 0.0, 0.3] {
        b.add_node(&[], &[x]);
    }
    for (u, v) in [
        (1, 2),
        (1, 3),
        (2, 3),
        (2, 4),
        (3, 6),
        (4, 5),
        (5, 6),
        (4, 6),
        (1, 5),
    ] {
        b.add_edge(u, v).unwrap();
    }
    (b.build().unwrap(), 5)
}

/// The pinned query set replayed after every churn batch (node ids are
/// clamped into the graph at run time, so late epochs stay covered).
fn churn_queries(q: u32) -> Vec<CommunityQuery> {
    vec![
        CommunityQuery::new(Method::Exact, q).with_k(3),
        CommunityQuery::new(Method::Sea, q)
            .with_k(3)
            .with_error_bound(0.05)
            .with_seed(11),
        CommunityQuery::new(Method::Exact, q)
            .with_k(2)
            .with_gamma(0.0),
        CommunityQuery::new(Method::Exact, q)
            .with_k(3)
            .with_model(csag::decomp::CommunityModel::KTruss),
    ]
}

/// Renders an engine outcome into a comparable fingerprint: community +
/// exact δ bits on success, the full message on failure.
fn outcome_fingerprint(r: Result<&CommunityResult, &CsagError>) -> String {
    match r {
        Ok(res) => format!("ok:{:?}:{:x}", res.community, res.delta.to_bits()),
        Err(e) => format!("err:{e}"),
    }
}

/// `csag serve-churn`: apply N random update batches to the paper's
/// pinned examples (Figure 1 IMDB, Figure 3) and, after every batch,
/// re-answer the pinned queries *through the serving layer* (a
/// `csag::service::Service` over the evolving store — the same
/// admission/scheduler path `csag serve` uses) and on a fresh engine
/// built from the post-churn graph. Any divergence is a bug; the
/// command exits non-zero (this is CI's churn-smoke gate).
fn cmd_serve_churn(args: &[String]) -> Result<(), String> {
    use csag::service::{Request, Service, ServiceConfig};

    let flags = parse_flags(args, &common_arity())?;
    let batches: usize = flags.get("batches")?.unwrap_or(6);
    let seed: u64 = flags.get("seed")?.unwrap_or(0xC0FFEE);
    let json = flags.has("json");

    let (fig1, q1) = figure1_imdb();
    let (fig3, q3) = figure3_graph();
    let mut total_checks = 0usize;
    let mut mismatches = 0usize;
    let mut epoch_mismatches = 0usize;
    let mut retained = 0usize;
    let mut invalidated = 0usize;
    let mut served = 0u64;
    let mut apply_ms = Vec::new();

    for (name, graph, q) in [("fig1", fig1, q1), ("fig3", fig3, q3)] {
        let store = std::sync::Arc::new(GraphStore::new(graph));
        let service = Service::new(
            std::sync::Arc::clone(&store),
            ServiceConfig::default().with_workers(2),
        );
        let mut rng = StdRng::seed_from_u64(seed ^ q as u64);
        // Warm the store's caches so carry-over is actually exercised.
        for query in churn_queries(q) {
            let _ = service.run(Request::new(query));
        }
        for batch_no in 0..batches {
            let batch = random_updates(store.snapshot().graph(), &mut rng, 5, ChurnMix::MIXED);
            let t = Instant::now();
            let report = store
                .apply(&batch)
                .map_err(|e| format!("{name} batch {batch_no}: {e}"))?;
            apply_ms.push(t.elapsed().as_secs_f64() * 1000.0);
            retained += report.distance_tables_retained;
            invalidated += report.distance_tables_invalidated;

            let snap = store.snapshot();
            let fresh = Engine::new(snap.graph().clone());
            for query in churn_queries(q) {
                let response = service
                    .run(Request::new(query.clone()))
                    .map_err(|e| format!("{name} epoch {}: submit failed: {e}", report.epoch))?;
                let rebuilt = fresh.run(&query);
                total_checks += 1;
                // The service must answer from the freshly published
                // epoch — pinned-at-admission, not a stale snapshot.
                if response.epoch != report.epoch {
                    epoch_mismatches += 1;
                    eprintln!(
                        "EPOCH MISMATCH {name}: served {} but store is at {}",
                        response.epoch, report.epoch
                    );
                }
                let a = outcome_fingerprint(response.outcome.as_ref().map(|arc| arc.as_ref()));
                let b = outcome_fingerprint(rebuilt.as_ref());
                if a != b {
                    mismatches += 1;
                    eprintln!(
                        "MISMATCH {name} epoch {} ({:?}): served {a} vs fresh {b}",
                        report.epoch, query.method
                    );
                }
            }
        }
        served += service.metrics().completed;
    }

    let mean_apply = apply_ms.iter().sum::<f64>() / apply_ms.len().max(1) as f64;
    if json {
        println!(
            "{{\"batches\":{batches},\"checks\":{total_checks},\"mismatches\":{mismatches},\
             \"epoch_mismatches\":{epoch_mismatches},\"served\":{served},\
             \"mean_apply_ms\":{mean_apply:.3},\"distance_tables_retained\":{retained},\
             \"distance_tables_invalidated\":{invalidated}}}"
        );
    } else {
        println!(
            "serve-churn: {batches} batch(es) × 2 graphs, {total_checks} service answers \
             diffed against fresh engines → {mismatches} mismatch(es), \
             {epoch_mismatches} epoch mismatch(es)"
        );
        println!(
            "mean apply latency {mean_apply:.2} ms; distance tables retained {retained}, \
             invalidated {invalidated}; {served} request(s) served"
        );
    }
    if mismatches + epoch_mismatches > 0 {
        return Err(format!(
            "{} of {total_checks} service answers diverged from a fresh engine",
            mismatches + epoch_mismatches
        ));
    }
    Ok(())
}

fn cmd_demo(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &common_arity())?;
    let (g, q) = figure1_imdb();
    let engine = Engine::new(g);
    let res = engine
        .run(&CommunityQuery::new(Method::Exact, q).with_k(3))
        .map_err(|e| e.to_string())?;
    if flags.has("json") {
        println!("{}", res.to_json());
        return Ok(());
    }
    println!(
        "Figure 1: IMDB snapshot, query = {}",
        FIGURE1_TITLES[q as usize]
    );
    println!("δ-optimal 3-core community (δ = {:.4}):", res.delta);
    for &v in &res.community {
        println!("  {}", FIGURE1_TITLES[v as usize]);
    }
    Ok(())
}
