//! `csag` — command-line community search on attributed graphs.
//!
//! Every search command routes through the unified [`csag::engine`]: one
//! `Engine` per loaded graph, one `CommunityQuery` per run, typed errors
//! on stderr, and `--json` for machine-readable results.
//!
//! ```text
//! csag stats    <graph.txt>
//! csag exact    <graph.txt> --query <id> --k <k> [--gamma G] [--truss] [--budget-ms MS] [--json]
//! csag sea      <graph.txt> --query <id> --k <k> [--gamma G] [--truss] [--error E]
//!                           [--confidence C] [--lambda L] [--seed S] [--size L H] [--json]
//! csag baseline <graph.txt> --method acq|atc|vac|evac --query <id> --k <k> [--gamma G] [--json]
//! csag generate --nodes N --communities C --seed S --out <graph.txt>
//! csag demo     [--json]
//! ```
//!
//! Graph files use the `csag-graph v1` text format (see `csag::graph::io`).

use csag::datasets::generator::{generate, SyntheticConfig};
use csag::datasets::paper_examples::{figure1_imdb, FIGURE1_TITLES};
use csag::engine::{error_to_json, CommunityQuery, CommunityResult, CsagError, Engine, Method};
use csag::graph::io::{load_graph, save_graph};
use csag::graph::stats::graph_stats;
use csag::graph::AttributedGraph;
use std::collections::HashMap;
use std::process::exit;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        usage();
        exit(2);
    };
    let result = match cmd.as_str() {
        "stats" => cmd_stats(&args[1..]),
        "exact" => cmd_search(&args[1..], Method::Exact),
        "sea" => cmd_search(&args[1..], Method::Sea),
        "baseline" => cmd_baseline(&args[1..]),
        "generate" => cmd_generate(&args[1..]),
        "demo" => cmd_demo(&args[1..]),
        "help" | "--help" | "-h" => {
            usage();
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    if let Err(msg) = result {
        eprintln!("error: {msg}");
        exit(1);
    }
}

fn usage() {
    eprintln!(
        "csag — community search on attributed graphs\n\
         \n\
         commands:\n\
         \x20 stats    <graph.txt>                      graph statistics\n\
         \x20 exact    <graph.txt> --query Q --k K      exact CS-AG (δ-optimal community)\n\
         \x20 sea      <graph.txt> --query Q --k K      approximate CS-AG with accuracy guarantee\n\
         \x20 baseline <graph.txt> --method M ...       run acq | atc | vac | evac\n\
         \x20 generate --nodes N --communities C ...    write a synthetic attributed graph\n\
         \x20 demo                                       the paper's Figure-1 IMDB example\n\
         \n\
         common flags: --gamma G (0..1, default 0.5)  --truss  --seed S  --json\n\
         exact flags:  --budget-ms MS (stop early, report best found; unbounded by default)\n\
         sea flags:    --error E (default 0.02)  --confidence C (default 0.95)\n\
         \x20             --lambda L (default 0.2)  --size L H (size-bounded search)"
    );
}

/// Parses `--flag value` pairs and positional arguments.
struct Flags {
    positional: Vec<String>,
    named: HashMap<String, Vec<String>>,
}

fn parse_flags(args: &[String], arity: &HashMap<&str, usize>) -> Result<Flags, String> {
    let mut positional = Vec::new();
    let mut named: HashMap<String, Vec<String>> = HashMap::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            let n = *arity
                .get(name)
                .ok_or_else(|| format!("unknown flag --{name}"))?;
            let mut vals = Vec::with_capacity(n);
            for _ in 0..n {
                vals.push(
                    it.next()
                        .ok_or_else(|| format!("--{name} expects {n} value(s)"))?
                        .clone(),
                );
            }
            named.insert(name.to_string(), vals);
        } else {
            positional.push(a.clone());
        }
    }
    Ok(Flags { positional, named })
}

impl Flags {
    fn get<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String> {
        match self.named.get(name) {
            None => Ok(None),
            Some(vals) => vals[0]
                .parse()
                .map(Some)
                .map_err(|_| format!("--{name}: cannot parse `{}`", vals[0])),
        }
    }

    fn require<T: std::str::FromStr>(&self, name: &str) -> Result<T, String> {
        self.get(name)?
            .ok_or_else(|| format!("--{name} is required"))
    }

    fn has(&self, name: &str) -> bool {
        self.named.contains_key(name)
    }
}

fn common_arity() -> HashMap<&'static str, usize> {
    HashMap::from([
        ("query", 1),
        ("k", 1),
        ("gamma", 1),
        ("truss", 0),
        ("budget-ms", 1),
        ("error", 1),
        ("confidence", 1),
        ("lambda", 1),
        ("seed", 1),
        ("size", 2),
        ("method", 1),
        ("nodes", 1),
        ("communities", 1),
        ("out", 1),
        ("json", 0),
    ])
}

fn load(flags: &Flags) -> Result<AttributedGraph, String> {
    let path = flags
        .positional
        .first()
        .ok_or("a graph file is required (csag-graph v1 format)")?;
    load_graph(path).map_err(|e| format!("loading {path}: {e}"))
}

/// Builds the query shared by `exact` / `sea` / `baseline` from flags.
fn query_of(flags: &Flags, method: Method) -> Result<CommunityQuery, String> {
    let q: u32 = flags.require("query")?;
    let k: u32 = flags.require("k")?;
    let mut query = CommunityQuery::new(method, q).with_k(k);
    if flags.has("truss") {
        query = query.with_model(csag::decomp::CommunityModel::KTruss);
    }
    if let Some(g) = flags.get::<f64>("gamma")? {
        query = query.with_gamma(g);
    }
    if let Some(ms) = flags.get::<u64>("budget-ms")? {
        query = query.with_time_budget(Duration::from_millis(ms));
    }
    if let Some(e) = flags.get::<f64>("error")? {
        query = query.with_error_bound(e);
    }
    if let Some(c) = flags.get::<f64>("confidence")? {
        query = query.with_confidence(c);
    }
    if let Some(l) = flags.get::<f64>("lambda")? {
        query = query.with_lambda(l);
    }
    if let Some(s) = flags.get::<u64>("seed")? {
        query = query.with_seed(s);
    }
    if let Some(vals) = flags.named.get("size") {
        let l: usize = vals[0].parse().map_err(|_| "bad --size lower bound")?;
        let h: usize = vals[1].parse().map_err(|_| "bad --size upper bound")?;
        query = query.with_size_bound(l, h);
        if query.method == Method::Sea {
            query = query.with_method(Method::SeaSizeBounded);
        }
    }
    // Build-time validation: degenerate parameters die here with a
    // precise message (and, in `--json` mode, an error object on stdout),
    // before the graph is even touched.
    query.build().map_err(|e| {
        if flags.has("json") {
            println!("{}", error_to_json(&e));
        }
        e.to_string()
    })
}

fn print_community(g: &AttributedGraph, comm: &[u32]) {
    for &v in comm {
        let tokens: Vec<&str> = g
            .tokens(v)
            .iter()
            .filter_map(|&t| g.interner().name(t))
            .collect();
        println!(
            "  node {v:>6}  [{}]  {:?}",
            tokens.join(","),
            g.numeric_raw(v)
        );
    }
}

fn print_result(g: &AttributedGraph, res: &CommunityResult) {
    print!(
        "{}: community of {} nodes, δ = {:.6}",
        res.provenance.method,
        res.community.len(),
        res.delta
    );
    match &res.certificate {
        Some(c) if c.moe > 0.0 => print!(
            ", CI ± {:.4e} at {:.0}% (certified = {})",
            c.moe,
            c.confidence * 100.0,
            c.certified
        ),
        Some(_) => print!(" (δ-optimal)"),
        None => {
            if let Some(obj) = res.provenance.objective {
                print!(" (own objective {obj:.4})");
            }
        }
    }
    println!(
        "  [{:.1} ms: prepare {:.1} + search {:.1}]",
        res.timings.total.as_secs_f64() * 1000.0,
        res.timings.prepare.as_secs_f64() * 1000.0,
        res.timings.search.as_secs_f64() * 1000.0,
    );
    if res.provenance.rounds > 0 {
        println!(
            "  {} SEA round(s), {} candidate(s), sample {}/{}",
            res.provenance.rounds,
            res.provenance.candidates_examined,
            res.provenance.sample_size,
            res.provenance.population_size
        );
    }
    if res.provenance.states_explored > 0 {
        println!("  {} states explored", res.provenance.states_explored);
    }
    print_community(g, &res.community);
}

/// Runs a built query and renders the outcome (text or `--json`).
/// Exit status is consistent across both modes: success and budget
/// exhaustion *with* a best-effort partial exit 0; every other engine
/// error exits non-zero (in `--json` mode the error object still goes to
/// stdout, with the human-readable message on stderr).
fn run_and_render(g: AttributedGraph, query: &CommunityQuery, json: bool) -> Result<(), String> {
    let engine = Engine::new(g);
    let g = engine.graph();
    match engine.run(query) {
        Ok(res) => {
            if json {
                println!("{}", res.to_json());
            } else {
                print_result(g, &res);
            }
            Ok(())
        }
        Err(CsagError::BudgetExhausted { partial: Some(p) }) => {
            if json {
                let err = CsagError::BudgetExhausted { partial: Some(p) };
                println!("{}", error_to_json(&err));
                return Ok(());
            }
            println!(
                "budget exhausted after {} states — best found so far: {} nodes, δ = {:.6}",
                p.states_explored,
                p.community.len(),
                p.delta
            );
            print_community(g, &p.community);
            Ok(())
        }
        Err(err) => {
            if json {
                println!("{}", error_to_json(&err));
            }
            Err(err.to_string())
        }
    }
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &common_arity())?;
    let g = load(&flags)?;
    let s = graph_stats(&g);
    let engine = Engine::new(g);
    let coreness = engine.coreness();
    let kmax = coreness.iter().copied().max().unwrap_or(0);
    let kavg = coreness.iter().map(|&c| c as f64).sum::<f64>() / coreness.len().max(1) as f64;
    println!("nodes      {}", s.nodes);
    println!("edges      {}", s.edges);
    println!("d_max      {}", s.max_degree);
    println!("d_avg      {:.2}", s.avg_degree);
    println!("k_max      {kmax}");
    println!("k_avg      {kavg:.2}");
    println!("numeric dims {}", engine.graph().attrs().dims());
    Ok(())
}

fn cmd_search(args: &[String], method: Method) -> Result<(), String> {
    let flags = parse_flags(args, &common_arity())?;
    let g = load(&flags)?;
    let query = query_of(&flags, method)?;
    run_and_render(g, &query, flags.has("json"))
}

fn cmd_baseline(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &common_arity())?;
    let g = load(&flags)?;
    let method: String = flags.require("method")?;
    let method: Method = method.parse().map_err(|e: CsagError| e.to_string())?;
    if !matches!(
        method,
        Method::Acq | Method::Atc | Method::Vac | Method::EVac
    ) {
        return Err(format!(
            "`{method}` is not a baseline; use the `exact` / `sea` commands"
        ));
    }
    let query = query_of(&flags, method)?;
    run_and_render(g, &query, flags.has("json"))
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &common_arity())?;
    let nodes: usize = flags.require("nodes")?;
    let communities: usize = flags.require("communities")?;
    let seed = flags.get::<u64>("seed")?.unwrap_or(0);
    let out: String = flags.require("out")?;
    let cfg = SyntheticConfig {
        nodes,
        communities,
        ..Default::default()
    };
    let (g, truth) = generate(&cfg, seed);
    save_graph(&g, &out).map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "wrote {out}: {} nodes, {} edges, {} planted communities",
        g.n(),
        g.m(),
        truth.len()
    );
    Ok(())
}

fn cmd_demo(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &common_arity())?;
    let (g, q) = figure1_imdb();
    let engine = Engine::new(g);
    let res = engine
        .run(&CommunityQuery::new(Method::Exact, q).with_k(3))
        .map_err(|e| e.to_string())?;
    if flags.has("json") {
        println!("{}", res.to_json());
        return Ok(());
    }
    println!(
        "Figure 1: IMDB snapshot, query = {}",
        FIGURE1_TITLES[q as usize]
    );
    println!("δ-optimal 3-core community (δ = {:.4}):", res.delta);
    for &v in &res.community {
        println!("  {}", FIGURE1_TITLES[v as usize]);
    }
    Ok(())
}
