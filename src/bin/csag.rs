//! `csag` — command-line community search on attributed graphs.
//!
//! ```text
//! csag stats    <graph.txt>
//! csag exact    <graph.txt> --query <id> --k <k> [--gamma G] [--truss] [--budget-ms MS]
//! csag sea      <graph.txt> --query <id> --k <k> [--gamma G] [--truss] [--error E]
//!                           [--confidence C] [--lambda L] [--seed S] [--size L H]
//! csag baseline <graph.txt> --method acq|atc|vac --query <id> --k <k> [--gamma G]
//! csag generate --nodes N --communities C --seed S --out <graph.txt>
//! csag demo
//! ```
//!
//! Graph files use the `csag-graph v1` text format (see `csag::graph::io`).

use csag::baselines;
use csag::core::distance::DistanceParams;
use csag::core::exact::{Exact, ExactParams, ExactStatus};
use csag::core::sea::{Sea, SeaParams};
use csag::core::CommunityModel;
use csag::datasets::generator::{generate, SyntheticConfig};
use csag::datasets::paper_examples::{figure1_imdb, FIGURE1_TITLES};
use csag::graph::io::{load_graph, save_graph};
use csag::graph::stats::graph_stats;
use csag::graph::AttributedGraph;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::process::exit;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        usage();
        exit(2);
    };
    let result = match cmd.as_str() {
        "stats" => cmd_stats(&args[1..]),
        "exact" => cmd_exact(&args[1..]),
        "sea" => cmd_sea(&args[1..]),
        "baseline" => cmd_baseline(&args[1..]),
        "generate" => cmd_generate(&args[1..]),
        "demo" => cmd_demo(),
        "help" | "--help" | "-h" => {
            usage();
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    if let Err(msg) = result {
        eprintln!("error: {msg}");
        exit(1);
    }
}

fn usage() {
    eprintln!(
        "csag — community search on attributed graphs\n\
         \n\
         commands:\n\
         \x20 stats    <graph.txt>                      graph statistics\n\
         \x20 exact    <graph.txt> --query Q --k K      exact CS-AG (δ-optimal community)\n\
         \x20 sea      <graph.txt> --query Q --k K      approximate CS-AG with accuracy guarantee\n\
         \x20 baseline <graph.txt> --method M ...       run acq | atc | vac\n\
         \x20 generate --nodes N --communities C ...    write a synthetic attributed graph\n\
         \x20 demo                                       the paper's Figure-1 IMDB example\n\
         \n\
         common flags: --gamma G (0..1, default 0.5)  --truss  --seed S\n\
         exact flags:  --budget-ms MS (stop early, report best found; unbounded by default)\n\
         sea flags:    --error E (default 0.02)  --confidence C (default 0.95)\n\
         \x20             --lambda L (default 0.2)  --size L H (size-bounded search)"
    );
}

/// Parses `--flag value` pairs and positional arguments.
struct Flags {
    positional: Vec<String>,
    named: HashMap<String, Vec<String>>,
}

fn parse_flags(args: &[String], arity: &HashMap<&str, usize>) -> Result<Flags, String> {
    let mut positional = Vec::new();
    let mut named: HashMap<String, Vec<String>> = HashMap::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            let n = *arity
                .get(name)
                .ok_or_else(|| format!("unknown flag --{name}"))?;
            let mut vals = Vec::with_capacity(n);
            for _ in 0..n {
                vals.push(
                    it.next()
                        .ok_or_else(|| format!("--{name} expects {n} value(s)"))?
                        .clone(),
                );
            }
            named.insert(name.to_string(), vals);
        } else {
            positional.push(a.clone());
        }
    }
    Ok(Flags { positional, named })
}

impl Flags {
    fn get<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String> {
        match self.named.get(name) {
            None => Ok(None),
            Some(vals) => vals[0]
                .parse()
                .map(Some)
                .map_err(|_| format!("--{name}: cannot parse `{}`", vals[0])),
        }
    }

    fn require<T: std::str::FromStr>(&self, name: &str) -> Result<T, String> {
        self.get(name)?
            .ok_or_else(|| format!("--{name} is required"))
    }

    fn has(&self, name: &str) -> bool {
        self.named.contains_key(name)
    }
}

fn common_arity() -> HashMap<&'static str, usize> {
    HashMap::from([
        ("query", 1),
        ("k", 1),
        ("gamma", 1),
        ("truss", 0),
        ("budget-ms", 1),
        ("error", 1),
        ("confidence", 1),
        ("lambda", 1),
        ("seed", 1),
        ("size", 2),
        ("method", 1),
        ("nodes", 1),
        ("communities", 1),
        ("out", 1),
    ])
}

fn load(flags: &Flags) -> Result<AttributedGraph, String> {
    let path = flags
        .positional
        .first()
        .ok_or("a graph file is required (csag-graph v1 format)")?;
    load_graph(path).map_err(|e| format!("loading {path}: {e}"))
}

fn model_of(flags: &Flags) -> CommunityModel {
    if flags.has("truss") {
        CommunityModel::KTruss
    } else {
        CommunityModel::KCore
    }
}

fn dparams_of(flags: &Flags) -> Result<DistanceParams, String> {
    Ok(match flags.get::<f64>("gamma")? {
        Some(g) => DistanceParams::with_gamma(g),
        None => DistanceParams::default(),
    })
}

fn print_community(g: &AttributedGraph, comm: &[u32]) {
    for &v in comm {
        let tokens: Vec<&str> = g
            .tokens(v)
            .iter()
            .filter_map(|&t| g.interner().name(t))
            .collect();
        println!(
            "  node {v:>6}  [{}]  {:?}",
            tokens.join(","),
            g.numeric_raw(v)
        );
    }
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &common_arity())?;
    let g = load(&flags)?;
    let s = graph_stats(&g);
    let coreness = csag::decomp::core_decomposition(&g);
    let kmax = coreness.iter().copied().max().unwrap_or(0);
    let kavg = coreness.iter().map(|&c| c as f64).sum::<f64>() / coreness.len().max(1) as f64;
    println!("nodes      {}", s.nodes);
    println!("edges      {}", s.edges);
    println!("d_max      {}", s.max_degree);
    println!("d_avg      {:.2}", s.avg_degree);
    println!("k_max      {kmax}");
    println!("k_avg      {kavg:.2}");
    println!("numeric dims {}", g.attrs().dims());
    Ok(())
}

fn cmd_exact(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &common_arity())?;
    let g = load(&flags)?;
    let q: u32 = flags.require("query")?;
    let k: u32 = flags.require("k")?;
    if q as usize >= g.n() {
        return Err(format!(
            "query {q} out of range (graph has {} nodes)",
            g.n()
        ));
    }
    let mut params = ExactParams::default()
        .with_k(k)
        .with_model(model_of(&flags));
    if let Some(ms) = flags.get::<u64>("budget-ms")? {
        params = params.with_time_budget(Duration::from_millis(ms));
    }
    let dp = dparams_of(&flags)?;
    match Exact::new(&g, dp).run(q, &params) {
        Some(res) => {
            println!(
                "community of {} nodes, δ = {:.6} ({} states explored{})",
                res.community.len(),
                res.delta,
                res.states_explored,
                if res.status == ExactStatus::BudgetExhausted {
                    ", budget exhausted — best found so far"
                } else {
                    ""
                }
            );
            print_community(&g, &res.community);
            Ok(())
        }
        None => Err(format!("node {q} has no {} at k={k}", model_of(&flags))),
    }
}

fn cmd_sea(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &common_arity())?;
    let g = load(&flags)?;
    let q: u32 = flags.require("query")?;
    let k: u32 = flags.require("k")?;
    if q as usize >= g.n() {
        return Err(format!(
            "query {q} out of range (graph has {} nodes)",
            g.n()
        ));
    }
    let mut params = SeaParams::default().with_k(k).with_model(model_of(&flags));
    if let Some(e) = flags.get::<f64>("error")? {
        params = params.with_error_bound(e);
    }
    if let Some(c) = flags.get::<f64>("confidence")? {
        params = params.with_confidence(c);
    }
    if let Some(l) = flags.get::<f64>("lambda")? {
        params = params.with_lambda(l);
    }
    if let Some(vals) = flags.named.get("size") {
        let l: usize = vals[0].parse().map_err(|_| "bad --size lower bound")?;
        let h: usize = vals[1].parse().map_err(|_| "bad --size upper bound")?;
        params = params.with_size_bound(l, h);
    }
    let seed = flags.get::<u64>("seed")?.unwrap_or(42);
    let dp = dparams_of(&flags)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let t = std::time::Instant::now();
    match Sea::new(&g, dp).run(q, &params, &mut rng) {
        Some(res) => {
            println!(
                "community of {} nodes in {:.1} ms, δ* = {:.6}, CI = {}, certified = {}",
                res.community.len(),
                t.elapsed().as_secs_f64() * 1000.0,
                res.delta_star,
                res.ci,
                res.certified
            );
            for (i, round) in res.rounds.iter().enumerate() {
                println!(
                    "  round {}: δ* = {:.4e}, ε = {:.4e}, ΔS = {}, candidates = {}",
                    i + 1,
                    round.delta_star,
                    round.moe,
                    round.added_samples,
                    round.candidates_examined
                );
            }
            print_community(&g, &res.community);
            Ok(())
        }
        None => Err(format!("node {q} has no {} at k={k}", model_of(&flags))),
    }
}

fn cmd_baseline(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &common_arity())?;
    let g = load(&flags)?;
    let q: u32 = flags.require("query")?;
    let k: u32 = flags.require("k")?;
    let method: String = flags.require("method")?;
    let model = model_of(&flags);
    let dp = dparams_of(&flags)?;
    let res = match method.as_str() {
        "acq" => baselines::acq(&g, q, k, model),
        "atc" => baselines::loc_atc(&g, q, k, model),
        "vac" => baselines::vac(&g, q, k, model, dp, Some(5_000)),
        other => return Err(format!("unknown method `{other}` (use acq|atc|vac)")),
    };
    match res {
        Some(r) => {
            println!(
                "{} community of {} nodes (objective {:.4}) in {:.1} ms",
                method,
                r.community.len(),
                r.objective,
                r.elapsed.as_secs_f64() * 1000.0
            );
            print_community(&g, &r.community);
            Ok(())
        }
        None => Err(format!("node {q} has no community at k={k}")),
    }
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &common_arity())?;
    let nodes: usize = flags.require("nodes")?;
    let communities: usize = flags.require("communities")?;
    let seed = flags.get::<u64>("seed")?.unwrap_or(0);
    let out: String = flags.require("out")?;
    let cfg = SyntheticConfig {
        nodes,
        communities,
        ..Default::default()
    };
    let (g, truth) = generate(&cfg, seed);
    save_graph(&g, &out).map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "wrote {out}: {} nodes, {} edges, {} planted communities",
        g.n(),
        g.m(),
        truth.len()
    );
    Ok(())
}

fn cmd_demo() -> Result<(), String> {
    let (g, q) = figure1_imdb();
    println!(
        "Figure 1: IMDB snapshot, query = {}",
        FIGURE1_TITLES[q as usize]
    );
    let exact = Exact::new(&g, DistanceParams::default())
        .run(q, &ExactParams::default().with_k(3))
        .expect("3-core exists");
    println!("δ-optimal 3-core community (δ = {:.4}):", exact.delta);
    for &v in &exact.community {
        println!("  {}", FIGURE1_TITLES[v as usize]);
    }
    Ok(())
}
